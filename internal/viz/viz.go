// Package viz renders experiment data series as ASCII charts for the
// terminal: horizontal bar charts for per-workload speedups (the paper's
// Figs. 6/8/11 style) and scatter rows for correlation plots (Fig. 7
// style). It keeps the harness dependency-free while making the
// regenerated figures legible at a glance.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width runes. A reference
// value (e.g. 1.0 for speedups) is marked with '|'; bars are drawn with
// '█' and negative-side bars (below the reference) with '░'.
type BarChart struct {
	Title     string
	Reference float64 // vertical reference line; 0 disables
	Width     int     // bar area width in runes (default 40)
	Bars      []Bar
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	labelW := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		lo = math.Min(lo, b.Value)
		hi = math.Max(hi, b.Value)
	}
	if len(c.Bars) == 0 {
		return c.Title + " (empty)\n"
	}
	if c.Reference != 0 {
		lo = math.Min(lo, c.Reference)
		hi = math.Max(hi, c.Reference)
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	refCol := -1
	if c.Reference != 0 {
		refCol = int(float64(width-1) * (c.Reference - lo) / span)
	}
	for _, b := range c.Bars {
		col := int(float64(width-1) * (b.Value - lo) / span)
		row := make([]rune, width)
		for i := range row {
			row[i] = ' '
		}
		fill := '█'
		if c.Reference != 0 && b.Value < c.Reference {
			fill = '░'
		}
		from, to := 0, col
		if refCol >= 0 {
			from, to = refCol, col
			if from > to {
				from, to = to, from
			}
		}
		for i := from; i <= to && i < width; i++ {
			row[i] = fill
		}
		if refCol >= 0 && refCol < width {
			row[refCol] = '|'
		}
		fmt.Fprintf(&sb, "%-*s %s %.3f\n", labelW, b.Label, string(row), b.Value)
	}
	return sb.String()
}

// Point is one labelled (x, y) sample.
type Point struct {
	Label string
	X, Y  float64
}

// Scatter renders labelled points on a character grid — enough to see a
// correlation trend (Fig. 7's mis-speculation ratio vs performance).
type Scatter struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	Points         []Point
}

// Add appends one point.
func (s *Scatter) Add(label string, x, y float64) {
	s.Points = append(s.Points, Point{Label: label, X: x, Y: y})
}

// String renders the scatter plot.
func (s *Scatter) String() string {
	w, h := s.Width, s.Height
	if w <= 0 {
		w = 56
	}
	if h <= 0 {
		h = 16
	}
	if len(s.Points) == 0 {
		return s.Title + " (empty)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, p := range s.Points {
		col := int(float64(w-1) * (p.X - minX) / (maxX - minX))
		row := h - 1 - int(float64(h-1)*(p.Y-minY)/(maxY-minY))
		if grid[row][col] == ' ' {
			grid[row][col] = '•'
		} else {
			grid[row][col] = '◉' // overlapping points
		}
	}
	var sb strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&sb, "%s\n", s.Title)
	}
	fmt.Fprintf(&sb, "%s (y: %.3f .. %.3f)\n", s.YLabel, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(&sb, "  |%s\n", string(row))
	}
	fmt.Fprintf(&sb, "  +%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "   %s (x: %.3f .. %.3f)\n", s.XLabel, minX, maxX)
	return sb.String()
}

// Sparkline renders a compact single-line series.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	out := make([]rune, len(values))
	for i, v := range values {
		idx := int(float64(len(ramp)-1) * (v - lo) / (hi - lo))
		out[i] = ramp[idx]
	}
	return string(out)
}

// StackedRow is one labelled bar of a StackedBar chart; Values are
// segment sizes in Series order.
type StackedRow struct {
	Label  string
	Values []float64
}

// StackedBar renders rows as horizontal 100%-stacked bars: each row is
// normalized to its own total so the segments show shares — the CPI-stack
// "where do the cycles go" view. Segments use a fixed fill-rune cycle and
// a legend maps runes to series names.
type StackedBar struct {
	Title  string
	Width  int // bar width in runes (default 48)
	Series []string
	Rows   []StackedRow
}

// stackedFills is the segment fill cycle (reused when Series is longer).
var stackedFills = []rune("█▓▒░▞·")

// Add appends one row; values must follow Series order.
func (c *StackedBar) Add(label string, values ...float64) {
	c.Rows = append(c.Rows, StackedRow{Label: label, Values: values})
}

// String renders the chart.
func (c *StackedBar) String() string {
	width := c.Width
	if width <= 0 {
		width = 48
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	var legend []string
	for i, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", stackedFills[i%len(stackedFills)], s))
	}
	fmt.Fprintf(&sb, "legend: %s\n", strings.Join(legend, "  "))

	labelW := 0
	for _, r := range c.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range c.Rows {
		total := 0.0
		for _, v := range r.Values {
			if v > 0 {
				total += v
			}
		}
		row := make([]rune, 0, width)
		if total > 0 {
			// Largest-remainder rounding so the segments always fill the
			// bar exactly, without zero-valued segments ever gaining cells.
			cells := make([]int, len(r.Values))
			fracs := make([]float64, len(r.Values))
			used := 0
			for i, v := range r.Values {
				if v < 0 {
					v = 0
				}
				exact := v / total * float64(width)
				cells[i] = int(exact)
				fracs[i] = exact - float64(cells[i])
				used += cells[i]
			}
			for used < width {
				best := -1
				for i, f := range fracs {
					if f > 0 && (best < 0 || f > fracs[best]) {
						best = i
					}
				}
				if best < 0 {
					break
				}
				cells[best]++
				fracs[best] = 0
				used++
			}
			for i, n := range cells {
				for j := 0; j < n; j++ {
					row = append(row, stackedFills[i%len(stackedFills)])
				}
			}
		}
		for len(row) < width {
			row = append(row, ' ')
		}
		fmt.Fprintf(&sb, "%-*s |%s| %.0f\n", labelW, r.Label, string(row), total)
	}
	return sb.String()
}
