package viz

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "speedups", Reference: 1.0, Width: 20}
	c.Add("fast", 1.5)
	c.Add("slow", 0.8)
	out := c.String()
	if !strings.Contains(out, "speedups") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "fast") || !strings.Contains(out, "1.500") {
		t.Errorf("missing bar row:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Error("missing positive fill")
	}
	if !strings.Contains(out, "░") {
		t.Error("missing below-reference fill")
	}
	if !strings.Contains(out, "|") {
		t.Error("missing reference mark")
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := &BarChart{Title: "x"}
	if !strings.Contains(c.String(), "empty") {
		t.Error("empty chart must say so")
	}
}

func TestBarChartEqualValues(t *testing.T) {
	c := &BarChart{Width: 10}
	c.Add("a", 2)
	c.Add("b", 2)
	if out := c.String(); !strings.Contains(out, "2.000") {
		t.Errorf("degenerate span broke rendering:\n%s", out)
	}
}

func TestScatter(t *testing.T) {
	s := &Scatter{Title: "corr", XLabel: "flush ratio", YLabel: "perf", Width: 20, Height: 8}
	s.Add("a", 0.1, 1.5)
	s.Add("b", 0.9, 1.0)
	s.Add("c", 0.9, 1.0) // overlap
	out := s.String()
	if !strings.Contains(out, "•") {
		t.Error("missing point")
	}
	if !strings.Contains(out, "◉") {
		t.Error("missing overlap marker")
	}
	if !strings.Contains(out, "flush ratio") || !strings.Contains(out, "perf") {
		t.Error("missing axis labels")
	}
	rows := strings.Count(out, "|")
	if rows < 8 {
		t.Errorf("grid rows = %d, want >= 8", rows)
	}
}

func TestScatterEmpty(t *testing.T) {
	s := &Scatter{Title: "x"}
	if !strings.Contains(s.String(), "empty") {
		t.Error("empty scatter must say so")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	out := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(out)) != 4 {
		t.Fatalf("length = %d", len([]rune(out)))
	}
	r := []rune(out)
	if r[0] != '▁' || r[3] != '█' {
		t.Errorf("ramp wrong: %q", out)
	}
	// Flat series must not divide by zero.
	if flat := Sparkline([]float64{5, 5, 5}); len([]rune(flat)) != 3 {
		t.Error("flat series broke")
	}
}

func TestStackedBar(t *testing.T) {
	c := &StackedBar{Title: "t", Width: 10, Series: []string{"a", "b", "c"}}
	c.Add("row1", 5, 5, 0)
	c.Add("row2", 0, 0, 0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "█ a") || !strings.Contains(lines[1], "▒ c") {
		t.Fatalf("legend wrong: %q", lines[1])
	}
	bar := lines[2][strings.IndexByte(lines[2], '|')+1:]
	bar = bar[:strings.IndexByte(bar, '|')]
	if got := []rune(bar); len(got) != 10 {
		t.Fatalf("bar width = %d, want 10: %q", len(got), bar)
	}
	// 50/50 split over width 10: five cells each, and the zero-valued
	// third series must gain no cells from rounding.
	if strings.Count(bar, "█") != 5 || strings.Count(bar, "▓") != 5 || strings.Count(bar, "▒") != 0 {
		t.Fatalf("segment split wrong: %q", bar)
	}
	// All-zero rows render an empty bar, not a crash.
	if !strings.Contains(lines[3], "|          |") {
		t.Fatalf("zero row not blank: %q", lines[3])
	}
}

func TestStackedBarRounding(t *testing.T) {
	c := &StackedBar{Width: 3, Series: []string{"a", "b", "c", "d"}}
	c.Add("r", 1, 1, 1, 1)
	out := c.String()
	bars := strings.SplitN(out, "|", 3)
	if len(bars) < 3 {
		t.Fatalf("no bar: %q", out)
	}
	if got := []rune(bars[1]); len(got) != 3 {
		t.Fatalf("bar width = %d, want exactly 3 (largest-remainder fill): %q", len(got), bars[1])
	}
}
