package viz

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "speedups", Reference: 1.0, Width: 20}
	c.Add("fast", 1.5)
	c.Add("slow", 0.8)
	out := c.String()
	if !strings.Contains(out, "speedups") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "fast") || !strings.Contains(out, "1.500") {
		t.Errorf("missing bar row:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Error("missing positive fill")
	}
	if !strings.Contains(out, "░") {
		t.Error("missing below-reference fill")
	}
	if !strings.Contains(out, "|") {
		t.Error("missing reference mark")
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := &BarChart{Title: "x"}
	if !strings.Contains(c.String(), "empty") {
		t.Error("empty chart must say so")
	}
}

func TestBarChartEqualValues(t *testing.T) {
	c := &BarChart{Width: 10}
	c.Add("a", 2)
	c.Add("b", 2)
	if out := c.String(); !strings.Contains(out, "2.000") {
		t.Errorf("degenerate span broke rendering:\n%s", out)
	}
}

func TestScatter(t *testing.T) {
	s := &Scatter{Title: "corr", XLabel: "flush ratio", YLabel: "perf", Width: 20, Height: 8}
	s.Add("a", 0.1, 1.5)
	s.Add("b", 0.9, 1.0)
	s.Add("c", 0.9, 1.0) // overlap
	out := s.String()
	if !strings.Contains(out, "•") {
		t.Error("missing point")
	}
	if !strings.Contains(out, "◉") {
		t.Error("missing overlap marker")
	}
	if !strings.Contains(out, "flush ratio") || !strings.Contains(out, "perf") {
		t.Error("missing axis labels")
	}
	rows := strings.Count(out, "|")
	if rows < 8 {
		t.Errorf("grid rows = %d, want >= 8", rows)
	}
}

func TestScatterEmpty(t *testing.T) {
	s := &Scatter{Title: "x"}
	if !strings.Contains(s.String(), "empty") {
		t.Error("empty scatter must say so")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	out := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(out)) != 4 {
		t.Fatalf("length = %d", len([]rune(out)))
	}
	r := []rune(out)
	if r[0] != '▁' || r[3] != '█' {
		t.Errorf("ramp wrong: %q", out)
	}
	// Flat series must not divide by zero.
	if flat := Sparkline([]float64{5, 5, 5}); len([]rune(flat)) != 3 {
		t.Error("flat series broke")
	}
}
