package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the decoder with arbitrary bytes: it must never
// panic and never allocate unboundedly, only return (*Trace, nil) or an
// error. Inputs that do decode are pushed through Verify as well (bounded
// by the decoded step count) so the verifier is fuzzed on the same budget.
func FuzzDecode(f *testing.F) {
	valid, _, _ := recordBytes(f, 60, 21)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7])
	corrupt := bytes.Clone(valid)
	corrupt[len(corrupt)/3] ^= 0x40
	f.Add(corrupt)
	f.Add([]byte("ACBT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A hostile trace can claim any step count; only verify cheap ones.
		if tr.Prog != nil && tr.Steps >= 0 && tr.Steps <= 1<<16 {
			_ = tr.Verify()
		}
	})
}
