package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"acb/internal/isa"
)

// Writer streams a trace file. Section blocks (program, memory, merge
// points) must be written before the first Branch call; Close flushes the
// final branch block and writes the end block. Errors are sticky: the
// first write failure is returned by every subsequent call, so the
// branch-record hot path can stay error-blind and check once at Close.
type Writer struct {
	w       io.Writer
	err     error
	prevPC  int
	recBuf  []byte // encoded records of the open branch block
	recs    int
	total   int64
	started bool // a branch block has been opened
	wrote   [blockEnd + 1]bool
	closed  bool
}

// NewWriter writes the preamble and meta block and returns a Writer.
// A zero h.ISAHash is filled with the current build's isa.Fingerprint.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.ISAHash == 0 {
		h.ISAHash = isa.Fingerprint()
	}
	tw := &Writer{w: w}
	pre := make([]byte, 0, 6)
	pre = append(pre, traceMagic[:]...)
	pre = binary.LittleEndian.AppendUint16(pre, traceVersion)
	if _, err := w.Write(pre); err != nil {
		return nil, fmt.Errorf("trace: write preamble: %w", err)
	}
	meta, err := encodeMeta(h)
	if err != nil {
		return nil, err
	}
	if err := tw.writeBlock(blockMeta, meta); err != nil {
		return nil, err
	}
	return tw, nil
}

func (tw *Writer) writeBlock(typ byte, payload []byte) error {
	if tw.err != nil {
		return tw.err
	}
	if uint64(len(payload)) > maxBlockLen {
		tw.err = fmt.Errorf("trace: block type %d payload %d exceeds limit", typ, len(payload))
		return tw.err
	}
	frame := make([]byte, 0, len(payload)+16)
	frame = append(frame, typ)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := tw.w.Write(frame); err != nil {
		tw.err = fmt.Errorf("trace: write block type %d: %w", typ, err)
	}
	return tw.err
}

func (tw *Writer) section(typ byte) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		tw.err = fmt.Errorf("trace: write after Close")
	} else if tw.started {
		tw.err = fmt.Errorf("trace: section block type %d after branch records", typ)
	} else if tw.wrote[typ] {
		tw.err = fmt.Errorf("trace: duplicate block type %d", typ)
	}
	tw.wrote[typ] = true
	return tw.err
}

// PutProgram embeds the instruction stream (isa.EncodeProgram format).
func (tw *Writer) PutProgram(p []isa.Instruction) error {
	if err := tw.section(blockProg); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := isa.EncodeProgram(&buf, p); err != nil {
		tw.err = err
		return err
	}
	return tw.writeBlock(blockProg, buf.Bytes())
}

// PutMemory embeds the initial memory image as delta-encoded sparse words
// in ascending address order.
func (tw *Writer) PutMemory(m *isa.Memory) error {
	if err := tw.section(blockMemory); err != nil {
		return err
	}
	words := m.DiffWords(isa.NewMemory(), 0) // all non-zero words, ascending
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(words)))
	prev := int64(0)
	for _, w := range words {
		b = binary.AppendUvarint(b, zigzag(w.Addr-prev))
		b = binary.AppendUvarint(b, zigzag(w.A))
		prev = w.Addr
	}
	return tw.writeBlock(blockMemory, b)
}

// PutMergePoints embeds the static branch-PC -> reconvergence-PC table
// (prog.CFG.AllReconvergences output), sorted by branch PC.
func (tw *Writer) PutMergePoints(mp map[int]int) error {
	if err := tw.section(blockMerge); err != nil {
		return err
	}
	pcs := make([]int, 0, len(mp))
	for pc := range mp {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(pcs)))
	prev := 0
	for _, pc := range pcs {
		b = binary.AppendUvarint(b, zigzag(int64(pc-prev)))
		b = binary.AppendUvarint(b, zigzag(int64(mp[pc]-pc)))
		prev = pc
	}
	return tw.writeBlock(blockMerge, b)
}

// Branch appends one conditional-branch outcome. Records are batched into
// blocks of branchBlockRecords; write errors surface here or at Close.
func (tw *Writer) Branch(pc int, taken bool, target int) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		tw.err = fmt.Errorf("trace: Branch after Close")
		return tw.err
	}
	tw.started = true
	key := zigzag(int64(pc-tw.prevPC)) << 1
	if taken {
		key |= 1
	}
	tw.recBuf = binary.AppendUvarint(tw.recBuf, key)
	if taken {
		tw.recBuf = binary.AppendUvarint(tw.recBuf, zigzag(int64(target-(pc+1))))
	}
	tw.prevPC = pc
	tw.recs++
	tw.total++
	if tw.recs >= branchBlockRecords {
		return tw.flushBranches()
	}
	return nil
}

func (tw *Writer) flushBranches() error {
	if tw.recs == 0 {
		return tw.err
	}
	payload := binary.AppendUvarint(make([]byte, 0, len(tw.recBuf)+4), uint64(tw.recs))
	payload = append(payload, tw.recBuf...)
	tw.recBuf = tw.recBuf[:0]
	tw.recs = 0
	return tw.writeBlock(blockBranch, payload)
}

// Close flushes pending branch records and writes the end block carrying
// the record total, functional step count and halt flag.
func (tw *Writer) Close(steps int64, halted bool) error {
	if tw.closed {
		return fmt.Errorf("trace: double Close")
	}
	tw.closed = true
	if err := tw.flushBranches(); err != nil {
		return err
	}
	var b []byte
	b = binary.AppendUvarint(b, uint64(tw.total))
	b = binary.AppendUvarint(b, uint64(steps))
	if halted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return tw.writeBlock(blockEnd, b)
}
