package trace

import (
	"fmt"
	"io"
	"os"

	"acb/internal/isa"
	"acb/internal/prog"
)

// Record runs the program to halt (or maxSteps) on the functional emulator
// and streams a complete, self-contained trace into w: provenance header,
// the program itself, the initial memory image, the static merge-point
// table from the post-dominator analysis, and every conditional-branch
// outcome. The caller's memory image is not mutated (the run uses a
// clone), and the output bytes are a pure function of (p, mem, maxSteps,
// h) — no timestamps, no randomness — so recording under any -jobs count
// or on any host yields identical files.
func Record(w io.Writer, p []isa.Instruction, mem *isa.Memory, maxSteps int64, h Header) (steps int64, halted bool, err error) {
	tw, err := NewWriter(w, h)
	if err != nil {
		return 0, false, err
	}
	if err := tw.PutProgram(p); err != nil {
		return 0, false, err
	}
	if err := tw.PutMemory(mem); err != nil {
		return 0, false, err
	}
	if err := tw.PutMergePoints(prog.NewCFG(p).AllReconvergences()); err != nil {
		return 0, false, err
	}
	st := isa.NewArchState(mem.Clone())
	steps, halted = st.RunHooked(p, maxSteps, func(res *isa.StepResult) {
		if res.Inst.Op == isa.Br {
			tw.Branch(res.PC, res.Taken, res.Inst.Target) // sticky error, checked at Close
		}
	})
	if err := tw.Close(steps, halted); err != nil {
		return steps, halted, err
	}
	return steps, halted, nil
}

// RecordFile records to a file at path, written atomically (temp file +
// rename) so a crashed recording never leaves a truncated trace behind.
func RecordFile(path string, p []isa.Instruction, mem *isa.Memory, maxSteps int64, h Header) (steps int64, halted bool, err error) {
	f, err := os.CreateTemp(dirOf(path), ".trace-*")
	if err != nil {
		return 0, false, err
	}
	steps, halted, err = Record(f, p, mem, maxSteps, h)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return steps, halted, err
	}
	// CreateTemp opens 0600; committed traces are ordinary artifacts.
	if err := os.Chmod(f.Name(), 0o644); err != nil {
		os.Remove(f.Name())
		return steps, halted, err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return steps, halted, err
	}
	return steps, halted, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Verify re-runs the functional emulator over the trace's embedded program
// and memory image and checks the recorded branch stream, step count and
// halt flag against it — the recorder's integrity check, and the proof a
// replayed workload reproduces the recorded execution exactly.
func (t *Trace) Verify() error {
	if t.Prog == nil {
		return fmt.Errorf("trace: verify: no embedded program")
	}
	if t.Header.ISAHash != isa.Fingerprint() {
		return fmt.Errorf("trace: verify: ISA fingerprint %#x does not match this build's %#x",
			t.Header.ISAHash, isa.Fingerprint())
	}
	var verr error
	i := 0
	st := isa.NewArchState(t.Memory())
	steps, halted := st.RunHooked(t.Prog, t.Steps, func(res *isa.StepResult) {
		if verr != nil || res.Inst.Op != isa.Br {
			return
		}
		if i >= len(t.Branches) {
			verr = fmt.Errorf("trace: verify: emulator executed more branches than the %d recorded", len(t.Branches))
			return
		}
		b := t.Branches[i]
		if b.PC != res.PC || b.Taken != res.Taken {
			verr = fmt.Errorf("trace: verify: branch %d is pc=%d taken=%v, recorded pc=%d taken=%v",
				i, res.PC, res.Taken, b.PC, b.Taken)
			return
		}
		i++
	})
	if verr != nil {
		return verr
	}
	if i != len(t.Branches) {
		return fmt.Errorf("trace: verify: emulator executed %d branches, trace records %d", i, len(t.Branches))
	}
	if steps != t.Steps || halted != t.Halted {
		return fmt.Errorf("trace: verify: emulator ran %d steps (halted=%v), trace says %d (halted=%v)",
			steps, halted, t.Steps, t.Halted)
	}
	return nil
}
