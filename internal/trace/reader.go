package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"acb/internal/isa"
)

// memWord is one non-zero word of the initial memory image.
type memWord struct {
	addr, val int64
}

// Reader streams a trace file: NewReader consumes the preamble, meta block
// and every section block up to the first branch record; Read then yields
// records one at a time until io.EOF, which is returned only after a valid
// end block and a clean underlying EOF. Any truncation, framing error, CRC
// mismatch or implausible count is an error — Reader never panics on
// hostile input and never allocates more than the input's actual size plus
// a fixed overhead.
type Reader struct {
	r      *bufio.Reader
	hdr    Header
	prog   []isa.Instruction
	mem    []memWord
	merges map[int]int

	pending []Branch // decoded records of the current branch block
	next    int      // cursor into pending
	prevPC  int
	total   int64 // records decoded so far

	done   bool
	steps  int64
	halted bool
}

// NewReader parses the preamble and all section blocks.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReader(r)}
	pre := make([]byte, 6)
	if _, err := io.ReadFull(tr.r, pre); err != nil {
		return nil, fmt.Errorf("trace: read preamble: %w", err)
	}
	if [4]byte(pre[:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", pre[:4])
	}
	if v := binary.LittleEndian.Uint16(pre[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (have %d)", v, traceVersion)
	}
	typ, payload, err := tr.readBlock()
	if err != nil {
		return nil, err
	}
	if typ != blockMeta {
		return nil, fmt.Errorf("trace: first block type %d, want meta", typ)
	}
	if tr.hdr, err = decodeMeta(payload); err != nil {
		return nil, err
	}
	// Consume section blocks until the first branch block or the end block.
	for {
		typ, payload, err := tr.readBlock()
		if err != nil {
			return nil, err
		}
		switch typ {
		case blockProg:
			if tr.prog != nil {
				return nil, fmt.Errorf("trace: duplicate program block")
			}
			br := bytes.NewReader(payload)
			if tr.prog, err = isa.DecodeProgram(br); err != nil {
				return nil, err
			}
			if br.Len() != 0 {
				return nil, fmt.Errorf("trace: %d trailing bytes in program block", br.Len())
			}
		case blockMemory:
			if tr.mem != nil {
				return nil, fmt.Errorf("trace: duplicate memory block")
			}
			if tr.mem, err = decodeMemory(payload); err != nil {
				return nil, err
			}
		case blockMerge:
			if tr.merges != nil {
				return nil, fmt.Errorf("trace: duplicate merge-point block")
			}
			if tr.merges, err = decodeMerges(payload, tr.prog); err != nil {
				return nil, err
			}
		case blockBranch:
			if err := tr.decodeBranchBlock(payload); err != nil {
				return nil, err
			}
			return tr, nil
		case blockEnd:
			if err := tr.finish(payload); err != nil {
				return nil, err
			}
			return tr, nil
		default:
			return nil, fmt.Errorf("trace: unknown block type %d", typ)
		}
	}
}

// readBlock reads one CRC-framed block.
func (tr *Reader) readBlock() (byte, []byte, error) {
	typ, err := tr.r.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("trace: read block type: %w", err)
	}
	plen, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return 0, nil, fmt.Errorf("trace: read block length: %w", err)
	}
	payload, err := readPayload(tr.r, plen)
	if err != nil {
		return 0, nil, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(tr.r, crc[:]); err != nil {
		return 0, nil, fmt.Errorf("trace: read block crc: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return 0, nil, fmt.Errorf("trace: block type %d crc mismatch: %#x != %#x", typ, got, want)
	}
	return typ, payload, nil
}

func decodeMemory(payload []byte) ([]memWord, error) {
	c := &payloadCursor{buf: payload}
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	// Every word costs at least two payload bytes (delta + value varints).
	if n > uint64(c.remaining())/2 {
		return nil, fmt.Errorf("trace: memory word count %d exceeds payload", n)
	}
	words := make([]memWord, 0, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, err := c.varint()
		if err != nil {
			return nil, err
		}
		v, err := c.varint()
		if err != nil {
			return nil, err
		}
		addr := prev + d
		if i > 0 && addr <= prev {
			return nil, fmt.Errorf("trace: memory addresses not strictly ascending at %#x", addr)
		}
		words = append(words, memWord{addr: addr, val: v})
		prev = addr
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return words, nil
}

func decodeMerges(payload []byte, p []isa.Instruction) (map[int]int, error) {
	c := &payloadCursor{buf: payload}
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(c.remaining())/2 {
		return nil, fmt.Errorf("trace: merge-point count %d exceeds payload", n)
	}
	mp := make(map[int]int, n)
	prev := 0
	for i := uint64(0); i < n; i++ {
		d, err := c.varint()
		if err != nil {
			return nil, err
		}
		rd, err := c.varint()
		if err != nil {
			return nil, err
		}
		pc := prev + int(d)
		if i > 0 && pc <= prev {
			return nil, fmt.Errorf("trace: merge-point PCs not strictly ascending at %d", pc)
		}
		recon := pc + int(rd)
		if p != nil && (pc < 0 || pc >= len(p) || recon < 0 || recon >= len(p)) {
			return nil, fmt.Errorf("trace: merge point %d -> %d outside program [0,%d)", pc, recon, len(p))
		}
		mp[pc] = recon
		prev = pc
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return mp, nil
}

func (tr *Reader) decodeBranchBlock(payload []byte) error {
	c := &payloadCursor{buf: payload}
	n, err := c.uvarint()
	if err != nil {
		return err
	}
	// Every record costs at least one payload byte.
	if n > uint64(c.remaining()) {
		return fmt.Errorf("trace: branch record count %d exceeds payload", n)
	}
	if cap(tr.pending) < int(n) {
		tr.pending = make([]Branch, 0, n)
	}
	tr.pending = tr.pending[:0]
	tr.next = 0
	for i := uint64(0); i < n; i++ {
		key, err := c.uvarint()
		if err != nil {
			return err
		}
		taken := key&1 != 0
		pc := tr.prevPC + int(unzigzag(key>>1))
		target := pc + 1
		if taken {
			td, err := c.varint()
			if err != nil {
				return err
			}
			target = pc + 1 + int(td)
		}
		if tr.prog != nil {
			if pc < 0 || pc >= len(tr.prog) {
				return fmt.Errorf("trace: branch record PC %d outside program [0,%d)", pc, len(tr.prog))
			}
			in := &tr.prog[pc]
			if !in.IsBranch() {
				return fmt.Errorf("trace: branch record at PC %d, but instruction is %s", pc, in)
			}
			if taken && target != in.Target {
				return fmt.Errorf("trace: branch record at PC %d has target %d, program says %d", pc, target, in.Target)
			}
		}
		tr.pending = append(tr.pending, Branch{PC: pc, Taken: taken, Target: target})
		tr.prevPC = pc
	}
	tr.total += int64(n)
	return c.done()
}

func (tr *Reader) finish(payload []byte) error {
	c := &payloadCursor{buf: payload}
	n, err := c.uvarint()
	if err != nil {
		return err
	}
	steps, err := c.uvarint()
	if err != nil {
		return err
	}
	hb, err := c.byte()
	if err != nil {
		return err
	}
	if hb > 1 {
		return fmt.Errorf("trace: end block halt flag %d", hb)
	}
	if err := c.done(); err != nil {
		return err
	}
	if int64(n) != tr.total {
		return fmt.Errorf("trace: end block says %d records, decoded %d", n, tr.total)
	}
	if _, err := tr.r.ReadByte(); err != io.EOF {
		return fmt.Errorf("trace: trailing data after end block")
	}
	tr.done = true
	tr.steps = int64(steps)
	tr.halted = hb == 1
	return nil
}

// Read returns the next branch record, or io.EOF after the end block.
func (tr *Reader) Read() (Branch, error) {
	for tr.next >= len(tr.pending) {
		if tr.done {
			return Branch{}, io.EOF
		}
		typ, payload, err := tr.readBlock()
		if err != nil {
			return Branch{}, err
		}
		switch typ {
		case blockBranch:
			if err := tr.decodeBranchBlock(payload); err != nil {
				return Branch{}, err
			}
		case blockEnd:
			if err := tr.finish(payload); err != nil {
				return Branch{}, err
			}
		default:
			return Branch{}, fmt.Errorf("trace: block type %d after branch records", typ)
		}
	}
	b := tr.pending[tr.next]
	tr.next++
	return b, nil
}

// Header returns the trace identity block.
func (tr *Reader) Header() Header { return tr.hdr }

// Program returns the embedded instruction stream (nil when absent).
func (tr *Reader) Program() []isa.Instruction { return tr.prog }

// MergePoints returns the embedded reconvergence table (nil when absent).
func (tr *Reader) MergePoints() map[int]int { return tr.merges }

// Memory materializes a fresh copy of the embedded initial memory image.
// Each call returns an independent Memory, so concurrent replays can
// mutate their images freely.
func (tr *Reader) Memory() *isa.Memory { return buildMemory(tr.mem) }

// Summary returns the end-block totals; valid only after Read has returned
// io.EOF (ok reports whether the end block was reached).
func (tr *Reader) Summary() (records, steps int64, halted, ok bool) {
	return tr.total, tr.steps, tr.halted, tr.done
}

func buildMemory(words []memWord) *isa.Memory {
	m := isa.NewMemory()
	for _, w := range words {
		m.Store(w.addr, w.val)
	}
	return m
}

// Trace is a fully decoded trace file.
type Trace struct {
	Header   Header
	Prog     []isa.Instruction
	Merges   map[int]int
	Branches []Branch
	Steps    int64
	Halted   bool

	mem []memWord
}

// Memory materializes a fresh copy of the initial memory image.
func (t *Trace) Memory() *isa.Memory { return buildMemory(t.mem) }

// Decode reads and validates an entire trace file.
func Decode(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{
		Header: tr.Header(),
		Prog:   tr.Program(),
		Merges: tr.MergePoints(),
		mem:    tr.mem,
	}
	for {
		b, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Branches = append(t.Branches, b)
	}
	_, t.Steps, t.Halted, _ = tr.Summary()
	return t, nil
}

// DecodeFile decodes the trace at path.
func DecodeFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
