package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"acb/internal/isa"
	"acb/internal/prog"
)

// testProgram builds a small loop with a data-dependent hammock (one
// conditional branch per iteration plus the loop back-edge) and a store in
// the taken body, so traces exercise PC deltas in both directions.
func testProgram(t testing.TB, iters int64, seed uint64) ([]isa.Instruction, *isa.Memory) {
	t.Helper()
	b := prog.NewBuilder()
	b.MovI(isa.R0, 0)
	b.MovI(isa.R1, iters)
	b.MovI(isa.R7, 0)
	b.Label("loop")
	b.AndI(isa.R4, isa.R0, 63)
	b.MulI(isa.R4, isa.R4, 8)
	b.MovI(isa.R3, 0x1000)
	b.Add(isa.R3, isa.R3, isa.R4)
	b.Load(isa.R2, isa.R3, 0)
	b.AndI(isa.R2, isa.R2, 1)
	b.Br(isa.EQZ, isa.R2, 0, "skip")
	b.AddI(isa.R7, isa.R7, 3)
	b.Store(isa.R3, 0x800, isa.R7)
	b.Label("skip")
	b.AddI(isa.R0, isa.R0, 1)
	b.Sub(isa.R4, isa.R0, isa.R1)
	b.Brnz(isa.R4, "loop")
	b.Halt()
	insts, err := b.Build()
	if err != nil {
		t.Fatalf("build test program: %v", err)
	}
	m := isa.NewMemory()
	x := seed | 1
	for i := int64(0); i < 64; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Store(0x1000+i*8, int64(x&0xFFFF))
	}
	return insts, m
}

func recordBytes(t testing.TB, iters int64, seed uint64) ([]byte, []isa.Instruction, *isa.Memory) {
	t.Helper()
	insts, mem := testProgram(t, iters, seed)
	var buf bytes.Buffer
	steps, halted, err := Record(&buf, insts, mem, 1<<20, Header{Source: "test", Kind: "unit", Seed: seed})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if !halted || steps == 0 {
		t.Fatalf("Record: steps=%d halted=%v", steps, halted)
	}
	return buf.Bytes(), insts, mem
}

func TestRoundTrip(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 0xDEADBEEF, 1 << 40} {
		data, insts, mem := recordBytes(t, 100, seed)
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: Decode: %v", seed, err)
		}
		if tr.Header.Source != "test" || tr.Header.Kind != "unit" || tr.Header.Seed != seed {
			t.Fatalf("seed %d: header %+v", seed, tr.Header)
		}
		if tr.Header.ISAHash != isa.Fingerprint() {
			t.Fatalf("seed %d: ISA hash %#x, want %#x", seed, tr.Header.ISAHash, isa.Fingerprint())
		}
		if !reflect.DeepEqual(tr.Prog, insts) {
			t.Fatalf("seed %d: program does not round-trip", seed)
		}
		if !tr.Memory().Equal(mem) {
			t.Fatalf("seed %d: memory image does not round-trip", seed)
		}
		want := prog.NewCFG(insts).AllReconvergences()
		if !reflect.DeepEqual(tr.Merges, want) {
			t.Fatalf("seed %d: merge points %v, want %v", seed, tr.Merges, want)
		}
		if !tr.Halted || tr.Steps == 0 || len(tr.Branches) == 0 {
			t.Fatalf("seed %d: steps=%d halted=%v branches=%d", seed, tr.Steps, tr.Halted, len(tr.Branches))
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("seed %d: Verify: %v", seed, err)
		}
	}
}

// TestBranchStreamMatchesEmulator cross-checks every decoded record against
// an independent functional run (not via Verify, so a bug shared by Record
// and Verify would still be caught).
func TestBranchStreamMatchesEmulator(t *testing.T) {
	data, insts, mem := recordBytes(t, 200, 7)
	tr, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	st := isa.NewArchState(mem.Clone())
	var got []Branch
	st.RunHooked(insts, 1<<20, func(res *isa.StepResult) {
		if res.Inst.Op == isa.Br {
			b := Branch{PC: res.PC, Taken: res.Taken, Target: res.PC + 1}
			if res.Taken {
				b.Target = res.Inst.Target
			}
			got = append(got, b)
		}
	})
	if !reflect.DeepEqual(got, tr.Branches) {
		t.Fatalf("decoded branch stream differs from emulator (got %d records, want %d)", len(tr.Branches), len(got))
	}
}

// TestDeterministicBytes: recording the same input twice yields identical
// files — the property the cross-jobs determinism test in experiments
// scales out.
func TestDeterministicBytes(t *testing.T) {
	a, _, _ := recordBytes(t, 150, 42)
	b, _, _ := recordBytes(t, 150, 42)
	if !bytes.Equal(a, b) {
		t.Fatalf("recording is not byte-deterministic: %d vs %d bytes", len(a), len(b))
	}
}

// TestStreamingReader: the incremental Reader sees exactly what Decode
// sees, across block boundaries (iters > branchBlockRecords/2 forces
// multiple branch blocks).
func TestStreamingReader(t *testing.T) {
	data, _, _ := recordBytes(t, branchBlockRecords+57, 5)
	want, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if int64(len(want.Branches)) <= branchBlockRecords {
		t.Fatalf("test needs >1 branch block, got %d records", len(want.Branches))
	}
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var got []Branch
	for {
		b, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read after %d records: %v", len(got), err)
		}
		got = append(got, b)
	}
	if !reflect.DeepEqual(got, want.Branches) {
		t.Fatalf("streamed records differ from Decode")
	}
	recs, steps, halted, ok := r.Summary()
	if !ok || recs != int64(len(want.Branches)) || steps != want.Steps || halted != want.Halted {
		t.Fatalf("Summary() = (%d,%d,%v,%v), want (%d,%d,%v,true)",
			recs, steps, halted, ok, len(want.Branches), want.Steps, want.Halted)
	}
}

// TestTruncation: every strict prefix of a valid trace must decode to an
// error — never a panic, never a silent success.
func TestTruncation(t *testing.T) {
	data, _, _ := recordBytes(t, 60, 9)
	for n := 0; n < len(data); n++ {
		if _, err := Decode(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(data))
		}
	}
}

// TestBitflip: flipping any single bit must either produce a decode error
// or (vacuously) decode to the identical trace — corruption is never
// silently accepted with different contents.
func TestBitflip(t *testing.T) {
	data, _, _ := recordBytes(t, 40, 11)
	orig, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, data)
			mut[i] ^= 1 << bit
			tr, err := Decode(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			if !reflect.DeepEqual(tr, orig) {
				t.Fatalf("flip byte %d bit %d: decoded without error to different contents", i, bit)
			}
		}
	}
}

// TestVerifyRejectsForeignISAHash: a trace stamped with a different ISA
// fingerprint must fail verification even if it decodes.
func TestVerifyRejectsForeignISAHash(t *testing.T) {
	insts, mem := testProgram(t, 20, 3)
	var buf bytes.Buffer
	if _, _, err := Record(&buf, insts, mem, 1<<20, Header{ISAHash: 0xBAD, Source: "x", Kind: "unit"}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	tr, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := tr.Verify(); err == nil {
		t.Fatalf("Verify accepted a foreign ISA fingerprint")
	}
}

// TestRecordBudgetExhaustion: a recording cut off by maxSteps stores
// halted=false and still verifies (the re-run stops at the same step).
func TestRecordBudgetExhaustion(t *testing.T) {
	insts, mem := testProgram(t, 1000, 13)
	var buf bytes.Buffer
	steps, halted, err := Record(&buf, insts, mem, 100, Header{Source: "x", Kind: "unit"})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if halted || steps != 100 {
		t.Fatalf("steps=%d halted=%v, want 100/false", steps, halted)
	}
	tr, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if tr.Halted || tr.Steps != 100 {
		t.Fatalf("decoded steps=%d halted=%v", tr.Steps, tr.Halted)
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestWriterMisuse: section blocks after branch records, duplicate
// sections, and writes after Close are rejected.
func TestWriterMisuse(t *testing.T) {
	insts, mem := testProgram(t, 10, 1)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, Header{Source: "x"})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := tw.PutProgram(insts); err != nil {
		t.Fatalf("PutProgram: %v", err)
	}
	if err := tw.PutProgram(insts); err == nil {
		t.Fatalf("duplicate PutProgram accepted")
	}
	// The sticky error must not leak into a fresh writer.
	buf.Reset()
	tw, err = NewWriter(&buf, Header{Source: "x"})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := tw.Branch(3, true, 7); err != nil {
		t.Fatalf("Branch: %v", err)
	}
	if err := tw.PutMemory(mem); err == nil {
		t.Fatalf("section block after branch records accepted")
	}
	buf.Reset()
	tw, err = NewWriter(&buf, Header{Source: "x"})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := tw.Close(0, true); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tw.Close(0, true); err == nil {
		t.Fatalf("double Close accepted")
	}
	if err := tw.Branch(0, false, 0); err == nil {
		t.Fatalf("Branch after Close accepted")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-trips to %d", v, got)
		}
	}
}
