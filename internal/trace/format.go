// Package trace implements the branch-trace format: a versioned, compact
// binary container for one program's complete branch behaviour, recorded
// from the functional emulator and replayed as a first-class workload.
//
// A trace file is a 6-byte preamble (magic "ACBT" + version) followed by a
// sequence of CRC-framed blocks:
//
//	type    u8
//	length  uvarint      payload byte count
//	payload [length]byte
//	crc     u32le        CRC-32 (IEEE) of the payload
//
// Block order is fixed: meta (required, first), then at most one each of
// program, memory and merge-points, then zero or more branch-record blocks,
// then the end block, then EOF. The meta block carries the ISA fingerprint
// (see isa.Fingerprint) and workload provenance; the program block embeds
// the full instruction stream in the isa.EncodeProgram format and the
// memory block the initial image, so a trace is self-contained: replay
// rebuilds the exact program and memory the recorder ran, which is what
// makes replayed timing byte-identical to the recorded run. Branch records
// are delta-encoded: one uvarint packing the zigzag PC delta with the taken
// bit, plus the zigzag target delta for taken branches. Merge-point records
// pair each conditional branch PC with its static reconvergence PC from the
// post-dominator analysis.
//
// Every multi-byte scalar is little-endian; all counts are validated
// against the framing before allocation, so a truncated or bit-flipped
// file produces an error — never a panic or an unbounded allocation.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

var traceMagic = [4]byte{'A', 'C', 'B', 'T'}

const traceVersion = 1

// Block types.
const (
	blockMeta   = 1 // ISA fingerprint + provenance
	blockProg   = 2 // isa.EncodeProgram payload
	blockMemory = 3 // sparse initial memory image
	blockMerge  = 4 // branch PC -> reconvergence PC table
	blockBranch = 5 // delta-encoded branch outcome records
	blockEnd    = 6 // record/step totals + halt flag
)

// Format limits. Decoding rejects anything beyond them, bounding what a
// hostile input can make the reader allocate.
const (
	maxBlockLen  = 1 << 28 // bytes per block payload
	maxStringLen = 1 << 12 // provenance string bytes
	// branchBlockRecords is the writer's records-per-block batch size.
	branchBlockRecords = 4096
)

// Header is the trace's identity: which ISA revision recorded it and where
// the program came from. It deliberately carries no timestamps — the same
// recording must produce the same bytes regardless of when or under how
// many jobs it ran.
type Header struct {
	ISAHash uint64 // isa.Fingerprint() of the recording build
	Source  string // workload or program name
	Kind    string // provenance class: "workload", "difftest", ...
	Seed    uint64 // generator seed of the source program
}

// Branch is one recorded conditional-branch outcome.
type Branch struct {
	PC     int
	Taken  bool
	Target int // architectural target when taken (pc+1 otherwise)
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// payloadCursor parses a block payload with bounds-checked reads.
type payloadCursor struct {
	buf []byte
	off int
}

func (c *payloadCursor) remaining() int { return len(c.buf) - c.off }

func (c *payloadCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or malformed varint at payload offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *payloadCursor) varint() (int64, error) {
	u, err := c.uvarint()
	return unzigzag(u), err
}

func (c *payloadCursor) u64() (uint64, error) {
	if c.remaining() < 8 {
		return 0, fmt.Errorf("trace: truncated u64 at payload offset %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += 8
	return v, nil
}

func (c *payloadCursor) byte() (byte, error) {
	if c.remaining() < 1 {
		return 0, fmt.Errorf("trace: truncated byte at payload offset %d", c.off)
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

func (c *payloadCursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("trace: string length %d exceeds limit %d", n, maxStringLen)
	}
	if uint64(c.remaining()) < n {
		return "", fmt.Errorf("trace: truncated string at payload offset %d", c.off)
	}
	s := string(c.buf[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

func (c *payloadCursor) done() error {
	if c.remaining() != 0 {
		return fmt.Errorf("trace: %d trailing bytes in block payload", c.remaining())
	}
	return nil
}

// readPayload reads exactly n payload bytes, growing the buffer
// incrementally so a lying length field fails at EOF instead of
// pre-allocating gigabytes.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	if n > maxBlockLen {
		return nil, fmt.Errorf("trace: block length %d exceeds limit %d", n, maxBlockLen)
	}
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		step := min(n-uint64(len(buf)), chunk)
		old := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[old:]); err != nil {
			return nil, fmt.Errorf("trace: truncated block payload: %w", err)
		}
	}
	return buf, nil
}

func encodeMeta(h Header) ([]byte, error) {
	if len(h.Source) > maxStringLen || len(h.Kind) > maxStringLen {
		return nil, fmt.Errorf("trace: provenance string exceeds %d bytes", maxStringLen)
	}
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, h.ISAHash)
	b = binary.AppendUvarint(b, uint64(len(h.Source)))
	b = append(b, h.Source...)
	b = binary.AppendUvarint(b, uint64(len(h.Kind)))
	b = append(b, h.Kind...)
	b = binary.LittleEndian.AppendUint64(b, h.Seed)
	return b, nil
}

func decodeMeta(payload []byte) (Header, error) {
	c := &payloadCursor{buf: payload}
	var h Header
	var err error
	if h.ISAHash, err = c.u64(); err != nil {
		return h, err
	}
	if h.Source, err = c.str(); err != nil {
		return h, err
	}
	if h.Kind, err = c.str(); err != nil {
		return h, err
	}
	if h.Seed, err = c.u64(); err != nil {
		return h, err
	}
	return h, c.done()
}
