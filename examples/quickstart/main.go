// Quickstart: build a small program with one hard-to-predict hammock,
// simulate it on the Skylake-like baseline with and without ACB, and
// print the comparison — the minimal end-to-end use of the library.
package main

import (
	"fmt"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/prog"
)

func main() {
	// A loop whose IF-ELSE hammock depends on effectively random data:
	//   for i := 0; i < N; i++ {
	//       v := table[i % period]
	//       if v & 1 != 0 { acc += 3 } else { acc += 7 }
	//   }
	b := prog.NewBuilder()
	b.MovI(isa.R1, 200_000) // iterations
	b.MovI(isa.R2, 0x1000)  // table base
	b.MovI(isa.R3, 0)       // i
	b.MovI(isa.R7, 0)       // acc
	b.Label("loop")
	b.AndI(isa.R4, isa.R3, 8191)
	b.MulI(isa.R4, isa.R4, 8)
	b.Add(isa.R5, isa.R2, isa.R4)
	b.Load(isa.R6, isa.R5, 0)
	b.AndI(isa.R6, isa.R6, 1)
	b.Brz(isa.R6, "else")
	b.AddI(isa.R7, isa.R7, 3)
	b.Jmp("end")
	b.Label("else")
	b.AddI(isa.R7, isa.R7, 7)
	b.Label("end")
	b.AddI(isa.R3, isa.R3, 1)
	b.Sub(isa.R8, isa.R3, isa.R1)
	b.Brnz(isa.R8, "loop")
	b.Halt()
	program := b.MustBuild()

	// Fill the table with pseudo-random words.
	image := isa.NewMemory()
	x := uint64(0x2545F4914F6CDD1D)
	for i := int64(0); i < 8192; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		image.Store(0x1000+i*8, int64(x&0xFFFF))
	}

	run := func(scheme ooo.Scheme, label string) ooo.Result {
		c := ooo.NewWithMemory(
			config.Skylake(),
			program,
			bpu.NewTAGE(bpu.DefaultTAGEConfig()),
			scheme,
			image.Clone(),
		)
		res, err := c.Run(2_000_000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s IPC %.3f   mispredicts/kilo %.2f   flushes %d\n",
			label, res.IPC, res.MispredPerKilo(), res.Flushes)
		return res
	}

	fmt.Println("quickstart: one H2P IF-ELSE hammock, 200K iterations")
	base := run(nil, "baseline")
	acb := core.New(core.DefaultConfig())
	with := run(acb, "acb")

	fmt.Printf("\nACB speedup: %.2fx   flush reduction: %.0f%%   hardware: %d bytes\n",
		with.IPC/base.IPC,
		(1-float64(with.Flushes)/float64(base.Flushes))*100,
		acb.StorageBytes())
	acb.Table().ForEach(func(e *core.ACBEntry) {
		fmt.Printf("learned: branch pc=%d %s reconverges at pc=%d (body %d, Dynamo %s)\n",
			e.PC, e.Type, e.ReconPC, e.BodySize, e.State)
	})
}
