// Scaling: reproduces the spirit of the paper's Fig. 1 and Sec. V-D on a
// few workloads — the cost of branch mis-speculation (perfect-BP headroom)
// grows as the core scales wider and deeper, and ACB's gain grows with it.
package main

import (
	"fmt"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/workload"
)

func main() {
	names := []string{"gobmk", "sjeng", "leela", "lammps", "compression"}
	configs := []config.Core{config.Scaled(1), config.Scaled(2), config.Scaled(3), config.Future()}

	fmt.Println("geomean over:", names)
	fmt.Printf("%-14s %-22s %-16s\n", "config", "perfect-BP headroom", "ACB speedup")

	for _, cfg := range configs {
		var perfect, acbGain []float64
		for _, n := range names {
			w, err := workload.ByName(n)
			if err != nil {
				panic(err)
			}
			base := run(w, cfg, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil)
			oracle := run(w, cfg, bpu.NewOracle(), nil)
			acb := run(w, cfg, bpu.NewTAGE(bpu.DefaultTAGEConfig()), core.New(core.DefaultConfig()))
			perfect = append(perfect, oracle.IPC/base.IPC)
			acbGain = append(acbGain, acb.IPC/base.IPC)
		}
		fmt.Printf("%-14s %-22.3f %-16.3f\n", cfg.Name, stats.Geomean(perfect), stats.Geomean(acbGain))
	}
	fmt.Println("\nThe perfect-BP column is the Fig. 1 trend: deeper/wider cores are")
	fmt.Println("increasingly bound by mis-speculation; ACB's gain follows (Sec. V-D).")
}

func run(w workload.Workload, cfg config.Core, pred bpu.Predictor, scheme ooo.Scheme) ooo.Result {
	p, m := w.Build()
	c := ooo.NewWithMemory(cfg, p, pred, scheme, m)
	res, err := c.Run(400_000)
	if err != nil {
		panic(err)
	}
	return res
}
