// Dynamo: demonstrates the run-time performance monitor throttling a
// predication-hostile workload (the paper's Sec. II-C3 pattern — the
// branch resolves behind a long-latency load, so predicating it
// serializes the loop) while leaving a predication-friendly workload
// alone. Compare ACB with and without Dynamo on both.
package main

import (
	"fmt"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/ooo"
	"acb/internal/workload"
)

func run(w workload.Workload, cfg core.Config, label string) {
	p, m := w.Build()
	var scheme ooo.Scheme
	var acb *core.ACB
	if label != "baseline" {
		acb = core.New(cfg)
		scheme = acb
	}
	c := ooo.NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), scheme, m)
	res, err := c.Run(600_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %-14s IPC %.3f  flushes/kilo %5.2f  predications %d",
		label, res.IPC, res.FlushPerKilo(), res.Predications)
	if acb != nil {
		bad, good := 0, 0
		acb.Table().ForEach(func(e *core.ACBEntry) {
			switch e.State {
			case core.DynBad:
				bad++
			case core.DynGood:
				good++
			}
		})
		fmt.Printf("  [dynamo: %d GOOD, %d BAD]", good, bad)
	}
	fmt.Println()
}

func main() {
	friendly, err := workload.ByName("lammps")
	if err != nil {
		panic(err)
	}
	hostile, err := workload.ByName("eembc")
	if err != nil {
		panic(err)
	}

	noDynamo := core.DefaultConfig()
	noDynamo.UseDynamo = false

	fmt.Println("predication-friendly (lammps: dominant small H2P hammock):")
	run(friendly, core.Config{}, "baseline")
	run(friendly, noDynamo, "acb-nodynamo")
	run(friendly, core.DefaultConfig(), "acb+dynamo")

	fmt.Println("\npredication-hostile (eembc: branch resolves behind an LLC miss):")
	run(hostile, core.Config{}, "baseline")
	run(hostile, noDynamo, "acb-nodynamo")
	run(hostile, core.DefaultConfig(), "acb+dynamo")

	fmt.Println("\nDynamo observes cycles per 16K-instruction epoch, alternating")
	fmt.Println("ACB-off/ACB-on, and walks involved entries NEUTRAL → LIKELY-GOOD/")
	fmt.Println("LIKELY-BAD → GOOD/BAD when the delta exceeds 1/8 (Fig. 5).")
}
