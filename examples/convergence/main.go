// Convergence: demonstrates the Learning Table classifying the paper's
// three convergence types (Fig. 3) plus a backward branch via the
// perspective-swap transform (Fig. 4), by feeding it the committed
// control-flow stream — the pure-hardware replacement for DMP's compiler
// analysis.
package main

import (
	"fmt"

	"acb/internal/core"
	"acb/internal/isa"
	"acb/internal/prog"
)

// pad emits enough straight-line filler that the learning window (N=40)
// expires before the next loop iteration reaches the candidate branch
// again — as in real programs, where iterations are long.
func pad(b *prog.Builder) {
	for i := 0; i < 48; i++ {
		b.AddI(isa.R5, isa.R5, 1)
	}
}

// observeProgram runs the program functionally and feeds the committed
// control flow to a learning table armed on branchPC, returning the
// classification.
func observeProgram(p []isa.Instruction, branchPC int, steps int) *core.Learned {
	lt := core.NewLearningTable(40)
	lt.Arm(branchPC, p[branchPC].Target)
	st := isa.NewArchState(nil)
	for i := 0; i < steps; i++ {
		pc := st.PC
		in := &p[pc]
		res := st.Step(p)
		if l := lt.Observe(pc, in.Op == isa.Br, in.IsControl(), res.Taken, in.Target, false); l != nil {
			return l
		}
		if res.Halted {
			break
		}
	}
	return nil
}

func show(name string, p []isa.Instruction, branchPC int) {
	fmt.Printf("— %s —\n", name)
	l := observeProgram(p, branchPC, 100_000)
	if l == nil {
		fmt.Printf("branch pc=%d: not classified (non-convergent)\n\n", branchPC)
		return
	}
	fmt.Printf("branch pc=%d (%s): %s, reconverges at pc=%d, fetch-%s-first, body=%d, backward=%v\n\n",
		l.PC, p[branchPC].String(), l.Type, l.ReconPC,
		map[bool]string{true: "taken", false: "not-taken"}[l.FirstTaken],
		l.BodySize, l.Backward)
}

func main() {
	// Every program alternates its branch via a counter bit in r9, so the
	// learning table observes both directions.

	// Type-1: IF without ELSE — reconvergence is the branch target.
	{
		b := prog.NewBuilder()
		b.Label("top")
		b.AddI(isa.R9, isa.R9, 1)
		b.AndI(isa.R1, isa.R9, 1)
		b.Brz(isa.R1, "skip") // <- the candidate branch
		b.AddI(isa.R2, isa.R2, 1)
		b.AddI(isa.R2, isa.R2, 2)
		b.Label("skip")
		pad(b)
		b.Jmp("top")
		show("Type-1 (IF-only hammock)", b.MustBuild(), 2)
	}

	// Type-2: IF-ELSE — the not-taken path's skip jump lands beyond the
	// branch target.
	{
		b := prog.NewBuilder()
		b.Label("top")
		b.AddI(isa.R9, isa.R9, 1)
		b.AndI(isa.R1, isa.R9, 1)
		b.Brz(isa.R1, "else") // <- the candidate branch
		b.AddI(isa.R2, isa.R2, 1)
		b.Jmp("end") // Jumper: target beyond the branch target
		b.Label("else")
		b.AddI(isa.R2, isa.R2, 7)
		b.Label("end")
		pad(b)
		b.Jmp("top")
		show("Type-2 (IF-ELSE)", b.MustBuild(), 2)
	}

	// Type-3: the taken path sits after the fall-through region and jumps
	// back to a point between the branch and its target.
	{
		b := prog.NewBuilder()
		b.Label("top")
		b.AddI(isa.R9, isa.R9, 1)
		b.AndI(isa.R1, isa.R9, 1)
		b.Brnz(isa.R1, "tpath") // <- the candidate branch
		b.AddI(isa.R2, isa.R2, 7)
		b.Label("recon")
		pad(b)
		b.Jmp("top")
		b.Label("tpath")
		b.AddI(isa.R2, isa.R2, 1)
		b.Jmp("recon") // Jumper: target before the branch target
		show("Type-3", b.MustBuild(), 2)
	}

	// Backward branch: the Fig. 4 transform learns it as a mirrored
	// Type-1 (fetch the taken path first, reconverge at pc+1).
	{
		b := prog.NewBuilder()
		b.Label("outer")
		b.AddI(isa.R9, isa.R9, 1)
		b.AndI(isa.R1, isa.R9, 3)
		b.AddI(isa.R1, isa.R1, 1) // trip count 1..4
		b.Label("body")
		b.AddI(isa.R2, isa.R2, 1)
		b.AddI(isa.R1, isa.R1, -1)
		b.Brnz(isa.R1, "body") // <- backward candidate branch
		pad(b)
		b.Jmp("outer")
		show("Backward branch (Fig. 4 transform)", b.MustBuild(), 5)
	}
}
