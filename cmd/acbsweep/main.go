// Command acbsweep regenerates the paper's tables and figures on the
// synthetic workload suite.
//
// Usage:
//
//	acbsweep -experiment fig6 -budget 400000
//	acbsweep -experiment all -format csv
//
// Experiments: fig1 fig6 fig7 fig8 fig9 fig10 fig11 scaling power census
// table1 table3 all (plus sens-* and multirecon; see -h).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"acb/internal/experiments"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/viz"
	"acb/internal/workload"
)

func main() {
	var (
		exp       = flag.String("experiment", "all", "experiment to run ("+strings.Join(experiments.Names(), " ")+" all)")
		budget    = flag.Int64("budget", 400_000, "retired-instruction budget per simulation")
		names     = flag.String("workloads", "", "comma-separated workload selectors: names, trace:<file>, tier=adversarial (default: full suite)")
		jobs      = flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		format    = flag.String("format", "ascii", "table rendering: json | csv | ascii")
		csv       = flag.Bool("csv", false, "deprecated alias for -format csv")
		plot      = flag.Bool("plot", false, "render ASCII charts alongside the tables")
		verbose   = flag.Bool("v", false, "per-run progress and runner stats on stderr")
		listNames = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()
	if *csv {
		*format = "csv"
	}
	render := renderer(*format)
	if render == nil {
		fmt.Fprintf(os.Stderr, "unknown format %q (want json, csv or ascii)\n", *format)
		os.Exit(1)
	}

	if *listNames {
		for _, w := range workload.All() {
			fmt.Printf("%-12s %-8s %s\n", w.Name, w.Category, w.Mirrors)
		}
		if advs, err := workload.Adversarial(); err == nil {
			for _, w := range advs {
				fmt.Printf("%-12s %-8s %s\n", w.Name, w.Category, w.Mirrors)
			}
		}
		return
	}

	opts := experiments.DefaultOptions()
	opts.Budget = *budget
	if *names != "" {
		ws, err := workload.Expand(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Workloads = append(opts.Workloads, ws...)
	}
	opts.Jobs = *jobs
	runStats := &experiments.RunnerStats{}
	opts.Stats = runStats
	if *verbose {
		opts.Verbose = true
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ran := false
	for _, e := range experiments.Experiments() {
		if *exp != e.Name && !(*exp == "all" && !e.Extra) {
			continue
		}
		ran = true
		fmt.Printf("== %s ==\n", e.Name)
		t := e.Func(opts)
		fmt.Print(render(t))
		if *plot {
			fmt.Println()
			fmt.Print(renderPlot(e.Name, t))
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	if *verbose && runStats.Jobs() > 0 {
		fmt.Fprintf(os.Stderr, "runner total: %s\n", runStats)
	}
}

// renderer returns the table-to-string function for a -format value (nil
// for an unknown format). JSON goes through stats.Table.MarshalJSON — the
// same serialization the acbd API serves, so a piped `acbsweep -format
// json` and a `GET /v1/results/{key}` are interchangeable.
func renderer(format string) func(*stats.Table) string {
	switch format {
	case "json":
		return func(t *stats.Table) string {
			b, err := t.MarshalJSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return string(b) + "\n"
		}
	case "csv":
		return (*stats.Table).CSV
	case "ascii":
		return (*stats.Table).String
	}
	return nil
}

// renderPlot draws an ASCII chart for the figure tables that benefit from
// one: speedup bar charts for fig6/fig8/fig11/scaling, and the Fig. 7
// correlation scatter.
func renderPlot(name string, t *stats.Table) string {
	// strconv.ParseFloat rejects garbage-suffixed cells like "1.2x" that
	// Sscanf("%g") would silently truncate to 1.2.
	parse := func(cell string) (float64, bool) {
		v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	switch name {
	case "fig6", "fig8", "fig11", "scaling":
		c := &viz.BarChart{Title: t.Header[1] + " (| = 1.0)", Reference: 1.0, Width: 44}
		for _, row := range t.Rows {
			if v, ok := parse(row[1]); ok {
				c.Add(row[0], v)
			}
		}
		return c.String()
	case "cpistack":
		c := &viz.StackedBar{
			Title:  "CPI stack (share of cycles per bucket)",
			Series: ooo.CPIBucketNames,
		}
		for _, row := range t.Rows {
			vals := make([]float64, 0, len(row)-3)
			ok := true
			for _, cell := range row[3:] {
				v, parsed := parse(cell)
				if !parsed {
					ok = false
					break
				}
				vals = append(vals, v)
			}
			if ok {
				c.Add(row[0]+"/"+row[1], vals...)
			}
		}
		return c.String()
	case "fig7":
		s := &viz.Scatter{
			Title:  "mis-speculation ratio vs performance ratio (one point per workload)",
			XLabel: "flush ratio (ACB/base)",
			YLabel: "perf ratio (ACB/base)",
		}
		for _, row := range t.Rows {
			x, okX := parse(row[2])
			y, okY := parse(row[1])
			if okX && okY {
				s.Add(row[0], x, y)
			}
		}
		return s.String()
	}
	return ""
}
