// Command acbsweep regenerates the paper's tables and figures on the
// synthetic workload suite.
//
// Usage:
//
//	acbsweep -experiment fig6 -budget 400000
//	acbsweep -experiment all -csv
//
// Experiments: fig1 fig6 fig7 fig8 fig9 fig10 fig11 scaling power census
// table1 table3 all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"acb/internal/experiments"
	"acb/internal/stats"
	"acb/internal/viz"
	"acb/internal/workload"
)

func main() {
	var (
		exp       = flag.String("experiment", "all", "experiment to run (fig1 fig6 fig7 fig8 fig9 fig10 fig11 scaling power census sens-n sens-epoch sens-acbtable sens-critical sens-predictor multirecon table1 table2 table3 all)")
		budget    = flag.Int64("budget", 400_000, "retired-instruction budget per simulation")
		names     = flag.String("workloads", "", "comma-separated workload subset (default: full suite)")
		jobs      = flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plot      = flag.Bool("plot", false, "render ASCII charts alongside the tables")
		verbose   = flag.Bool("v", false, "per-run progress and runner stats on stderr")
		listNames = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *listNames {
		for _, w := range workload.All() {
			fmt.Printf("%-12s %-8s %s\n", w.Name, w.Category, w.Mirrors)
		}
		return
	}

	opts := experiments.DefaultOptions()
	opts.Budget = *budget
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			w, err := workload.ByName(strings.TrimSpace(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}
	opts.Jobs = *jobs
	runStats := &experiments.RunnerStats{}
	opts.Stats = runStats
	if *verbose {
		opts.Verbose = true
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	type entry struct {
		name string
		run  func() *stats.Table
	}
	all := []entry{
		{"table1", func() *stats.Table { return experiments.TableI() }},
		{"table2", func() *stats.Table { return experiments.TableII() }},
		{"table3", func() *stats.Table { return experiments.TableIII() }},
		{"fig1", func() *stats.Table { return experiments.Figure1(opts) }},
		{"fig6", func() *stats.Table { return experiments.Figure6(opts) }},
		{"fig7", func() *stats.Table { return experiments.Figure7(opts) }},
		{"fig8", func() *stats.Table { return experiments.Figure8(opts) }},
		{"fig9", func() *stats.Table { return experiments.Figure9(opts) }},
		{"fig10", func() *stats.Table { return experiments.Figure10(opts) }},
		{"fig11", func() *stats.Table { return experiments.Figure11(opts) }},
		{"scaling", func() *stats.Table { return experiments.CoreScaling(opts) }},
		{"power", func() *stats.Table { return experiments.PowerProxy(opts) }},
		{"census", func() *stats.Table { return experiments.MispredictCensus(opts) }},
		{"sens-n", func() *stats.Table { return experiments.SensitivityN(opts) }},
		{"sens-epoch", func() *stats.Table { return experiments.SensitivityEpoch(opts) }},
		{"sens-acbtable", func() *stats.Table { return experiments.SensitivityACBTable(opts) }},
		{"sens-critical", func() *stats.Table { return experiments.SensitivityCriticalTable(opts) }},
		{"sens-predictor", func() *stats.Table { return experiments.SensitivityPredictor(opts) }},
		{"multirecon", func() *stats.Table { return experiments.MultiRecon(opts) }},
	}

	ran := false
	for _, e := range all {
		extra := strings.HasPrefix(e.name, "sens-") || e.name == "multirecon"
		if *exp != e.name && !(*exp == "all" && !extra) {
			continue
		}
		ran = true
		fmt.Printf("== %s ==\n", e.name)
		t := e.run()
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
		if *plot {
			fmt.Println()
			fmt.Print(renderPlot(e.name, t))
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	if *verbose && runStats.Jobs() > 0 {
		fmt.Fprintf(os.Stderr, "runner total: %s\n", runStats)
	}
}

// renderPlot draws an ASCII chart for the figure tables that benefit from
// one: speedup bar charts for fig6/fig8/fig11/scaling, and the Fig. 7
// correlation scatter.
func renderPlot(name string, t *stats.Table) string {
	// strconv.ParseFloat rejects garbage-suffixed cells like "1.2x" that
	// Sscanf("%g") would silently truncate to 1.2.
	parse := func(cell string) (float64, bool) {
		v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	switch name {
	case "fig6", "fig8", "fig11", "scaling":
		c := &viz.BarChart{Title: t.Header[1] + " (| = 1.0)", Reference: 1.0, Width: 44}
		for _, row := range t.Rows {
			if v, ok := parse(row[1]); ok {
				c.Add(row[0], v)
			}
		}
		return c.String()
	case "fig7":
		s := &viz.Scatter{
			Title:  "mis-speculation ratio vs performance ratio (one point per workload)",
			XLabel: "flush ratio (ACB/base)",
			YLabel: "perf ratio (ACB/base)",
		}
		for _, row := range t.Rows {
			x, okX := parse(row[2])
			y, okY := parse(row[1])
			if okX && okY {
				s.Add(row[0], x, y)
			}
		}
		return s.String()
	}
	return ""
}
