// Command acbsim simulates one workload on one configuration and prints
// the run's statistics.
//
// Usage:
//
//	acbsim -workload lammps -scheme acb -budget 1000000
//	acbsim -workload omnetpp -scheme dmp -config future -format json
//
// -format ascii (the default) prints the full human-readable report;
// json and csv emit the run's metric/value summary table through the
// same stats.Table serialization acbsweep and the acbd API use.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/dmp"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "lammps", "workload name (see acbsweep -list)")
		schemeStr = flag.String("scheme", "acb", "baseline | perfect | acb | acb-nodynamo | acb-eager | dmp | dmp-pbh | dhp")
		budget    = flag.Int64("budget", 1_000_000, "retired-instruction budget")
		cfgName   = flag.String("config", "skylake", "skylake | skylake-2x | skylake-3x | future")
		predName  = flag.String("predictor", "tage", "tage | gshare | bimodal | perceptron")
		format    = flag.String("format", "ascii", "output rendering: json | csv | ascii")
		topN      = flag.Int("top", 10, "print the N most-mispredicting branch PCs")
		pipe      = flag.Bool("pipestats", false, "collect and print pipeline utilization")
	)
	flag.Parse()

	if *format != "ascii" && *format != "json" && *format != "csv" {
		fail(fmt.Errorf("unknown format %q (want json, csv or ascii)", *format))
	}
	w, err := workload.ByName(*name)
	if err != nil {
		fail(err)
	}
	cfg, err := config.ByName(*cfgName)
	if err != nil {
		fail(err)
	}

	p, m := w.Build()

	var predictor bpu.Predictor
	switch *predName {
	case "tage":
		predictor = bpu.NewTAGE(bpu.DefaultTAGEConfig())
	case "gshare":
		predictor = bpu.NewGShare(14, 16)
	case "bimodal":
		predictor = bpu.NewBimodal(14)
	case "perceptron":
		predictor = bpu.NewPerceptron(10, 32)
	default:
		fail(fmt.Errorf("unknown predictor %q", *predName))
	}

	var scheme ooo.Scheme
	var acb *core.ACB
	switch *schemeStr {
	case "baseline":
	case "perfect":
		predictor = bpu.NewOracle()
	case "acb":
		acb = core.New(core.DefaultConfig())
		scheme = acb
	case "acb-nodynamo":
		c := core.DefaultConfig()
		c.UseDynamo = false
		acb = core.New(c)
		scheme = acb
	case "acb-eager":
		c := core.DefaultConfig()
		c.Eager = true
		acb = core.New(c)
		scheme = acb
	case "dmp", "dmp-pbh", "dhp":
		mode := dmp.ModeDMP
		if *schemeStr == "dhp" {
			mode = dmp.ModeDHP
		}
		c := dmp.DefaultConfig(mode)
		c.PerfectBranchHistory = *schemeStr == "dmp-pbh"
		cands := dmp.Profile(p, m, dmp.DefaultProfileConfig())
		scheme = dmp.New(c, cands)
	default:
		fail(fmt.Errorf("unknown scheme %q", *schemeStr))
	}

	simCore := ooo.NewWithMemory(cfg, p, predictor, scheme, m)
	if *pipe {
		simCore.EnablePipeStats()
	}
	res, err := simCore.Run(*budget)
	if err != nil {
		fail(err)
	}

	if *format != "ascii" {
		t := resultTable(&w, cfg, predictor, &res)
		if *format == "json" {
			b, err := t.MarshalJSON()
			if err != nil {
				fail(err)
			}
			fmt.Println(string(b))
		} else {
			fmt.Print(t.CSV())
		}
		return
	}

	fmt.Printf("workload      %s (%s) — %s\n", w.Name, w.Category, w.Mirrors)
	fmt.Printf("config        %s   predictor %s   scheme %s\n", cfg.Name, predictor.Name(), res.Scheme)
	fmt.Printf("retired       %d in %d cycles  (IPC %.3f)\n", res.Retired, res.Cycles, res.IPC)
	fmt.Printf("cond branches %d   mispredicts %d (%.2f /kilo)\n", res.CondBranches, res.Mispredicts, res.MispredPerKilo())
	fmt.Printf("flushes       %d (%.2f /kilo, %d divergence)\n", res.Flushes, res.FlushPerKilo(), res.DivFlushes)
	fmt.Printf("predications  %d   select-µops %d   transparent ops %d   invalidated mem %d\n",
		res.Predications, res.SelectUops, res.TransparentOps, res.InvalidatedMem)
	fmt.Printf("allocations   %d (wrong-path %d)   alloc-stall slots %d\n",
		res.Allocations, res.WrongPathAllocs, res.AllocStallSlots)
	fmt.Printf("L1D           %d hits / %d misses   LLC %d hits / %d misses   fwd %d\n",
		res.L1Hits, res.L1Misses, res.LLCHits, res.LLCMisses, res.LoadForwards)

	if *pipe {
		fmt.Printf("\n%s", simCore.PipeStats().String())
	}

	if acb != nil {
		fmt.Printf("\nACB: learned %d convergences, %d divergences, %d tracking failures, storage %d bytes\n",
			acb.Learnings, acb.Divergences, acb.TrackFails, acb.StorageBytes())
		acb.Table().ForEach(func(e *core.ACBEntry) {
			fmt.Printf("  entry pc=%-5d %-7s recon=%-5d firstTaken=%-5v body=%-3d conf=%-2d dynamo=%s\n",
				e.PC, e.Type, e.ReconPC, e.FirstTaken, e.BodySize, e.Confidence, e.State)
		})
	}

	if *topN > 0 {
		type row struct {
			pc int
			st *ooo.BranchStat
		}
		var rows []row
		for pc, st := range res.PerBranch {
			rows = append(rows, row{pc, st})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].st.Mispredict > rows[j].st.Mispredict })
		fmt.Printf("\ntop mispredicting branches:\n")
		for i, r := range rows {
			if i >= *topN || r.st.Mispredict == 0 {
				break
			}
			fmt.Printf("  pc=%-5d count=%-8d mispredict=%-7d predicated=%-7d diverged=%d\n",
				r.pc, r.st.Count, r.st.Mispredict, r.st.Predicated, r.st.Diverged)
		}
	}
}

// resultTable flattens one run into a metric/value stats.Table for the
// json and csv formats.
func resultTable(w *workload.Workload, cfg config.Core, pred bpu.Predictor, res *ooo.Result) *stats.Table {
	t := stats.NewTable("metric", "value")
	t.AddRow("workload", w.Name)
	t.AddRow("category", w.Category)
	t.AddRow("config", cfg.Name)
	t.AddRow("predictor", pred.Name())
	t.AddRow("scheme", res.Scheme)
	t.AddRow("retired", res.Retired)
	t.AddRow("cycles", res.Cycles)
	t.AddRow("ipc", res.IPC)
	t.AddRow("cond-branches", res.CondBranches)
	t.AddRow("mispredicts", res.Mispredicts)
	t.AddRow("mispredicts-per-kilo", res.MispredPerKilo())
	t.AddRow("flushes", res.Flushes)
	t.AddRow("flushes-per-kilo", res.FlushPerKilo())
	t.AddRow("divergence-flushes", res.DivFlushes)
	t.AddRow("predications", res.Predications)
	t.AddRow("select-uops", res.SelectUops)
	t.AddRow("transparent-ops", res.TransparentOps)
	t.AddRow("invalidated-mem", res.InvalidatedMem)
	t.AddRow("allocations", res.Allocations)
	t.AddRow("wrong-path-allocations", res.WrongPathAllocs)
	t.AddRow("alloc-stall-slots", res.AllocStallSlots)
	t.AddRow("l1d-hits", res.L1Hits)
	t.AddRow("l1d-misses", res.L1Misses)
	t.AddRow("llc-hits", res.LLCHits)
	t.AddRow("llc-misses", res.LLCMisses)
	t.AddRow("load-forwards", res.LoadForwards)
	return t
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
