// Command acbsim simulates one workload on one configuration and prints
// the run's statistics.
//
// Usage:
//
//	acbsim -workload lammps -scheme acb -budget 1000000
//	acbsim -workload omnetpp -scheme dmp -config future -format json
//
// -format ascii (the default) prints the full human-readable report;
// json and csv emit the run's metric/value summary table through the
// same stats.Table serialization acbsweep and the acbd API use.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/dmp"
	"acb/internal/experiments"
	"acb/internal/isa"
	"acb/internal/ooo"
	"acb/internal/sample"
	"acb/internal/stats"
	"acb/internal/trace"
	"acb/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "lammps", "workload selector: name, trace:<file>, or adversarial entry (see acbsweep -list)")
		schemeStr = flag.String("scheme", "acb", "baseline | perfect | acb | acb-nodynamo | acb-eager | dmp | dmp-pbh | dhp")
		budget    = flag.Int64("budget", 1_000_000, "retired-instruction budget")
		cfgName   = flag.String("config", "skylake", "skylake | skylake-2x | skylake-3x | future")
		predName  = flag.String("predictor", "tage", "tage | gshare | bimodal | perceptron")
		format    = flag.String("format", "ascii", "output rendering: json | csv | ascii")
		topN      = flag.Int("top", 10, "print the N most-mispredicting branch PCs")
		pipe      = flag.Bool("pipestats", false, "collect and print pipeline utilization")

		sampled   = flag.Bool("sampled", false, "SMARTS-style sampled simulation (see docs/SAMPLING.md)")
		sInterval = flag.Int64("sample-interval", 0, "sampling interval in instructions (0 = scale to budget)")
		sWarmup   = flag.Int64("sample-warmup", 0, "detailed-but-unmeasured warm-up per window (0 = default)")
		sMeasure  = flag.Int64("sample-measure", 0, "measured span per window (0 = default)")
		sVerify   = flag.Bool("sample-verify", false, "diff architectural state against the functional reference at every window boundary")
		sCompare  = flag.Bool("sample-compare-full", false, "also run the full detailed simulation and report CPI error and speedup")
		record    = flag.String("record", "", "record the workload's functional branch trace to this file and exit")
	)
	flag.Parse()

	if *format != "ascii" && *format != "json" && *format != "csv" {
		fail(fmt.Errorf("unknown format %q (want json, csv or ascii)", *format))
	}
	w, err := workload.Resolve(*name)
	if err != nil {
		fail(err)
	}
	cfg, err := config.ByName(*cfgName)
	if err != nil {
		fail(err)
	}

	p, m := w.Build()

	if *record != "" {
		steps, halted, err := trace.RecordFile(*record, p, m, *budget,
			trace.Header{Source: w.Name, Kind: "workload"})
		if err != nil {
			fail(err)
		}
		fmt.Printf("recorded %s: %d functional steps, halted=%v — replay with -workload trace:%s\n",
			*record, steps, halted, *record)
		return
	}

	newPredictor := func() bpu.Predictor {
		if *schemeStr == "perfect" {
			return bpu.NewOracle()
		}
		switch *predName {
		case "tage":
			return bpu.NewTAGE(bpu.DefaultTAGEConfig())
		case "gshare":
			return bpu.NewGShare(14, 16)
		case "bimodal":
			return bpu.NewBimodal(14)
		case "perceptron":
			return bpu.NewPerceptron(10, 32)
		}
		fail(fmt.Errorf("unknown predictor %q", *predName))
		return nil
	}

	var newScheme func() ooo.Scheme
	switch *schemeStr {
	case "baseline", "perfect":
	case "acb":
		newScheme = func() ooo.Scheme { return core.New(core.DefaultConfig()) }
	case "acb-nodynamo":
		newScheme = func() ooo.Scheme {
			c := core.DefaultConfig()
			c.UseDynamo = false
			return core.New(c)
		}
	case "acb-eager":
		newScheme = func() ooo.Scheme {
			c := core.DefaultConfig()
			c.Eager = true
			return core.New(c)
		}
	case "dmp", "dmp-pbh", "dhp":
		mode := dmp.ModeDMP
		if *schemeStr == "dhp" {
			mode = dmp.ModeDHP
		}
		c := dmp.DefaultConfig(mode)
		c.PerfectBranchHistory = *schemeStr == "dmp-pbh"
		cands := dmp.Profile(p, m, dmp.DefaultProfileConfig())
		newScheme = func() ooo.Scheme { return dmp.New(c, cands) }
	default:
		fail(fmt.Errorf("unknown scheme %q", *schemeStr))
	}

	if *sampled {
		plan := sample.PlanForBudget(*budget)
		if *sInterval > 0 {
			plan.Interval = *sInterval
		}
		if *sWarmup > 0 {
			plan.Warmup = *sWarmup
		}
		if *sMeasure > 0 {
			plan.Measure = *sMeasure
		}
		runSampled(&w, cfg, p, m, plan, sampledOpts{
			budget:       *budget,
			newPredictor: newPredictor,
			newScheme:    newScheme,
			verify:       *sVerify,
			compareFull:  *sCompare,
			format:       *format,
		})
		return
	}

	predictor := newPredictor()
	var scheme ooo.Scheme
	var acb *core.ACB
	if newScheme != nil {
		scheme = newScheme()
		acb, _ = scheme.(*core.ACB)
	}

	simCore := ooo.NewWithMemory(cfg, p, predictor, scheme, m)
	if *pipe {
		simCore.EnablePipeStats()
	}
	res, err := simCore.Run(*budget)
	if err != nil {
		fail(err)
	}

	if *format != "ascii" {
		t := resultTable(&w, cfg, predictor, &res)
		if *format == "json" {
			b, err := t.MarshalJSON()
			if err != nil {
				fail(err)
			}
			fmt.Println(string(b))
		} else {
			fmt.Print(t.CSV())
		}
		return
	}

	fmt.Printf("workload      %s (%s) — %s\n", w.Name, w.Category, w.Mirrors)
	fmt.Printf("config        %s   predictor %s   scheme %s\n", cfg.Name, predictor.Name(), res.Scheme)
	fmt.Printf("retired       %d in %d cycles  (IPC %.3f)\n", res.Retired, res.Cycles, res.IPC)
	fmt.Printf("cond branches %d   mispredicts %d (%.2f /kilo)\n", res.CondBranches, res.Mispredicts, res.MispredPerKilo())
	fmt.Printf("flushes       %d (%.2f /kilo, %d divergence)\n", res.Flushes, res.FlushPerKilo(), res.DivFlushes)
	fmt.Printf("predications  %d   select-µops %d   transparent ops %d   invalidated mem %d\n",
		res.Predications, res.SelectUops, res.TransparentOps, res.InvalidatedMem)
	fmt.Printf("allocations   %d (wrong-path %d)   alloc-stall slots %d\n",
		res.Allocations, res.WrongPathAllocs, res.AllocStallSlots)
	fmt.Printf("L1D           %d hits / %d misses   LLC %d hits / %d misses   fwd %d\n",
		res.L1Hits, res.L1Misses, res.LLCHits, res.LLCMisses, res.LoadForwards)

	if *pipe {
		fmt.Printf("\n%s", simCore.PipeStats().String())
	}

	if acb != nil {
		fmt.Printf("\nACB: learned %d convergences, %d divergences, %d tracking failures, storage %d bytes\n",
			acb.Learnings, acb.Divergences, acb.TrackFails, acb.StorageBytes())
		acb.Table().ForEach(func(e *core.ACBEntry) {
			fmt.Printf("  entry pc=%-5d %-7s recon=%-5d firstTaken=%-5v body=%-3d conf=%-2d dynamo=%s\n",
				e.PC, e.Type, e.ReconPC, e.FirstTaken, e.BodySize, e.Confidence, e.State)
		})
	}

	if *topN > 0 {
		type row struct {
			pc int
			st *ooo.BranchStat
		}
		var rows []row
		for pc, st := range res.PerBranch {
			rows = append(rows, row{pc, st})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].st.Mispredict > rows[j].st.Mispredict })
		fmt.Printf("\ntop mispredicting branches:\n")
		for i, r := range rows {
			if i >= *topN || r.st.Mispredict == 0 {
				break
			}
			fmt.Printf("  pc=%-5d count=%-8d mispredict=%-7d predicated=%-7d diverged=%d\n",
				r.pc, r.st.Count, r.st.Mispredict, r.st.Predicated, r.st.Diverged)
		}
	}
}

type sampledOpts struct {
	budget       int64
	newPredictor func() bpu.Predictor
	newScheme    func() ooo.Scheme
	verify       bool
	compareFull  bool
	format       string
}

// runSampled performs the SMARTS-style sampled run (and, with
// -sample-compare-full, the full detailed run it estimates), printing the
// estimate in the requested format. Window jobs fan out over the
// experiments worker pool, so a sampled run uses every core even for a
// single workload.
func runSampled(w *workload.Workload, cfg config.Core, p []isa.Instruction, m *isa.Memory, plan sample.Plan, o sampledOpts) {
	opts := sample.Options{
		Budget:       o.budget,
		Config:       cfg,
		NewPredictor: o.newPredictor,
		NewScheme:    o.newScheme,
		Verify:       o.verify,
		Pool: func(n int, run func(i int)) error {
			return experiments.Pool(experiments.Options{}, n, run)
		},
	}

	sampledStart := time.Now()
	est, err := sample.Run(p, m.Clone(), plan, opts)
	if err != nil {
		fail(err)
	}
	sampledWall := time.Since(sampledStart)

	var fullCPI float64
	var fullWall time.Duration
	if o.compareFull {
		var scheme ooo.Scheme
		if o.newScheme != nil {
			scheme = o.newScheme()
		}
		fullStart := time.Now()
		full := ooo.NewWithMemory(cfg, p, o.newPredictor(), scheme, m)
		res, err := full.Run(o.budget)
		if err != nil {
			fail(err)
		}
		fullWall = time.Since(fullStart)
		fullCPI = float64(res.Cycles) / float64(res.Retired)
	}

	if o.format != "ascii" {
		t := stats.NewTable("metric", "value")
		t.AddRow("workload", w.Name)
		t.AddRow("config", cfg.Name)
		t.AddRow("sampled-cpi", fmt.Sprintf("%.6f", est.CPI))
		t.AddRow("sample-ci95", fmt.Sprintf("%.6f", est.CI95))
		t.AddRow("sample-windows", len(est.Windows))
		t.AddRow("sample-interval", plan.Interval)
		t.AddRow("sample-warmup", plan.Warmup)
		t.AddRow("sample-measure", plan.Measure)
		t.AddRow("measured-instrs", est.MeasuredInstrs)
		t.AddRow("total-instrs", est.TotalInstrs)
		t.AddRow("est-cycles", est.EstCycles)
		t.AddRow("boundary-diffs", est.BoundaryFailures)
		t.AddRow("sampled-wall-ms", sampledWall.Milliseconds())
		if o.compareFull {
			t.AddRow("full-cpi", fmt.Sprintf("%.6f", fullCPI))
			t.AddRow("cpi-error-pct", fmt.Sprintf("%.4f", est.CPIErrorPct(fullCPI)))
			t.AddRow("full-wall-ms", fullWall.Milliseconds())
			t.AddRow("sampled-speedup-x", fmt.Sprintf("%.2f", float64(fullWall)/float64(sampledWall)))
		}
		if o.format == "json" {
			b, err := t.MarshalJSON()
			if err != nil {
				fail(err)
			}
			fmt.Println(string(b))
		} else {
			fmt.Print(t.CSV())
		}
		return
	}

	fmt.Printf("workload      %s (%s) — %s\n", w.Name, w.Category, w.Mirrors)
	fmt.Printf("config        %s   sampled (interval %d, warmup %d, measure %d)\n",
		cfg.Name, plan.Interval, plan.Warmup, plan.Measure)
	fmt.Printf("sampled CPI   %.4f ± %.4f (95%% CI) over %d windows\n", est.CPI, est.CI95, len(est.Windows))
	fmt.Printf("measured      %d of %d instrs (%.1f%% detailed)   est cycles %d\n",
		est.MeasuredInstrs, est.TotalInstrs,
		100*float64(est.MeasuredInstrs)/float64(est.TotalInstrs), est.EstCycles)
	if o.verify {
		fmt.Printf("boundaries    %d windows verified, %d diverged\n", len(est.Windows), est.BoundaryFailures)
		for _, win := range est.Windows {
			if win.BoundaryDiff != "" {
				fmt.Printf("  window %d (start %d): %s\n", win.Index, win.Start, win.BoundaryDiff)
			}
		}
	}
	fmt.Printf("wall          sampled %d ms\n", sampledWall.Milliseconds())
	if o.compareFull {
		fmt.Printf("full CPI      %.4f in %d ms — sampled error %+.2f%%, speedup %.1fx\n",
			fullCPI, fullWall.Milliseconds(), est.CPIErrorPct(fullCPI),
			float64(fullWall)/float64(sampledWall))
	}
}

// resultTable flattens one run into a metric/value stats.Table for the
// json and csv formats.
func resultTable(w *workload.Workload, cfg config.Core, pred bpu.Predictor, res *ooo.Result) *stats.Table {
	t := stats.NewTable("metric", "value")
	t.AddRow("workload", w.Name)
	t.AddRow("category", w.Category)
	t.AddRow("config", cfg.Name)
	t.AddRow("predictor", pred.Name())
	t.AddRow("scheme", res.Scheme)
	t.AddRow("retired", res.Retired)
	t.AddRow("cycles", res.Cycles)
	t.AddRow("ipc", res.IPC)
	t.AddRow("cond-branches", res.CondBranches)
	t.AddRow("mispredicts", res.Mispredicts)
	t.AddRow("mispredicts-per-kilo", res.MispredPerKilo())
	t.AddRow("flushes", res.Flushes)
	t.AddRow("flushes-per-kilo", res.FlushPerKilo())
	t.AddRow("divergence-flushes", res.DivFlushes)
	t.AddRow("predications", res.Predications)
	t.AddRow("select-uops", res.SelectUops)
	t.AddRow("transparent-ops", res.TransparentOps)
	t.AddRow("invalidated-mem", res.InvalidatedMem)
	t.AddRow("allocations", res.Allocations)
	t.AddRow("wrong-path-allocations", res.WrongPathAllocs)
	t.AddRow("alloc-stall-slots", res.AllocStallSlots)
	t.AddRow("l1d-hits", res.L1Hits)
	t.AddRow("l1d-misses", res.L1Misses)
	t.AddRow("llc-hits", res.LLCHits)
	t.AddRow("llc-misses", res.LLCMisses)
	t.AddRow("load-forwards", res.LoadForwards)
	return t
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
