// Command acbfuzz runs differential fuzz campaigns against the simulator:
// seeded random programs are executed by the functional emulator (ground
// truth), the OOO baseline, and the OOO with forced and learned dynamic
// predication, asserting identical final architectural state plus the
// invariant pack on every run. Failures are minimized and written as
// replayable JSON corpus files.
//
// Usage:
//
//	acbfuzz -n 10000 -seed 1 -jobs 8
//	acbfuzz -duration 60s -jobs 2 -corpus-out /tmp/corpus
//	acbfuzz -configs baseline,forced,acb-hot -n 500
//	acbfuzz -emit-seed-corpus internal/difftest/testdata
//	acbfuzz -promote 3 -seed 1 -promote-dir internal/workload/testdata/adversarial
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"acb/internal/difftest"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "number of programs to check (ignored with -duration)")
		seed      = flag.Uint64("seed", 1, "campaign seed; program i uses seed+i")
		jobs      = flag.Int("jobs", 0, "concurrent checks (0 = GOMAXPROCS)")
		duration  = flag.Duration("duration", 0, "run until this deadline instead of a fixed count")
		configs   = flag.String("configs", "", "comma-separated engine subset (default: full matrix: "+difftest.EngineNames()+")")
		gen       = flag.String("gen", "default", "generator shape: default | recon")
		shrink    = flag.Bool("shrink", true, "minimize failing programs before reporting")
		corpusOut = flag.String("corpus-out", "", "directory for failure repro files")
		emitSeed  = flag.String("emit-seed-corpus", "", "write the curated seed corpus to this directory and exit")
		verbose   = flag.Bool("v", false, "log per-batch progress")
		timeout   = flag.Duration("timeout", 0, "per-engine run bound; wedged engines fail instead of stalling")

		promote     = flag.Int("promote", 0, "promote this many interesting passing programs to the adversarial corpus and exit")
		promoteDir  = flag.String("promote-dir", filepath.Join("internal", "workload", "testdata", "adversarial"), "adversarial corpus directory for -promote")
		minPred     = flag.Int64("min-predications", 8, "promotion floor: predications the matrix must record")
		minDivFlush = flag.Int64("min-div-flushes", 1, "promotion floor: divergence flushes the matrix must record")
	)
	flag.Parse()

	if *emitSeed != "" {
		if err := emitSeedCorpus(*emitSeed); err != nil {
			fmt.Fprintln(os.Stderr, "acbfuzz:", err)
			os.Exit(1)
		}
		return
	}

	if *promote > 0 {
		if err := promoteCorpus(*promote, *seed, *promoteDir, *minPred, *minDivFlush, *timeout, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "acbfuzz:", err)
			os.Exit(1)
		}
		return
	}

	opts := difftest.CampaignOptions{
		Seed:      *seed,
		N:         *n,
		Duration:  *duration,
		Jobs:      *jobs,
		Shrink:    *shrink,
		CorpusDir: *corpusOut,
		Timeout:   *timeout,
	}
	switch *gen {
	case "default":
		opts.Gen = difftest.DefaultGenConfig()
	case "recon":
		opts.Gen = difftest.ReconvergenceGenConfig()
	default:
		fmt.Fprintf(os.Stderr, "acbfuzz: unknown -gen %q (want default or recon)\n", *gen)
		os.Exit(2)
	}
	if *configs != "" {
		matrix, err := difftest.MatrixByNames(strings.Split(*configs, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "acbfuzz:", err)
			os.Exit(2)
		}
		opts.Check.Matrix = matrix
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	res, err := difftest.RunCampaign(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acbfuzz:", err)
		os.Exit(1)
	}
	fmt.Printf("acbfuzz: seed %d: %s in %s\n", *seed, res.Summary(), time.Since(start).Round(time.Millisecond))
	if !res.OK() {
		for _, f := range res.Failures {
			loc := ""
			if f.File != "" {
				loc = " -> " + f.File
			}
			fmt.Printf("  seed %d (%d nodes after shrink): %s%s\n",
				f.Seed, difftest.CountNodes(f.Prog.Nodes), f.Report.Failures[0], loc)
		}
		os.Exit(1)
	}
}

// promoteCorpus walks the seed schedule looking for passing programs that
// exercise the predication machinery hard enough to be worth pinning,
// shrinks each while it stays interesting, and commits trace + manifest
// pairs to the adversarial corpus directory.
func promoteCorpus(want int, seed uint64, dir string, minPred, minDivFlush int64, timeout time.Duration, verbose bool) error {
	popts := difftest.PromoteOptions{
		Dir:             dir,
		Check:           difftest.Options{Timeout: timeout},
		MinPredications: minPred,
		MinDivFlushes:   minDivFlush,
	}
	promoted := 0
	const maxSeeds = 100000
	for i := uint64(0); i < maxSeeds && promoted < want; i++ {
		s := seed + i
		p := difftest.Generate(s, difftest.DefaultGenConfig())
		rep := difftest.Check(p, popts.Check)
		if !popts.Interesting(rep) {
			if verbose {
				fmt.Fprintf(os.Stderr, "acbfuzz: seed %d not interesting (%d predications, %d div flushes)\n",
					s, rep.Predications, rep.DivFlushes)
			}
			continue
		}
		popts.Desc = fmt.Sprintf("promoted fuzz discovery (campaign seed %d)", s)
		path, srep, err := difftest.Promote(p, popts)
		if err != nil {
			return err
		}
		promoted++
		fmt.Printf("acbfuzz: promoted seed %d -> %s (%d predications, %d div flushes, %d nodes pre-shrink)\n",
			s, path, srep.Predications, srep.DivFlushes, difftest.CountNodes(p.Nodes))
	}
	if promoted < want {
		return fmt.Errorf("only %d/%d promotions in %d seeds; lower the floors", promoted, want, maxSeeds)
	}
	return nil
}

func emitSeedCorpus(dir string) error {
	entries := difftest.SeedCorpus()
	for i, e := range entries {
		rep := difftest.Check(e.Prog, difftest.Options{})
		if !rep.OK() {
			return fmt.Errorf("seed corpus entry %s fails its own check: %s", e.Name, rep.Failures[0])
		}
		path := filepath.Join(dir, fmt.Sprintf("%02d-%s.json", i, e.Name))
		if err := difftest.WriteCorpusFile(path, e); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d steps)\n", path, rep.Steps)
	}
	return nil
}
