// Command acbtrace inspects workloads statically and through the
// Fields-style critical-path model: disassembly, hammock/reconvergence
// analysis, and the fraction of mispredictions that actually lie on the
// critical path (the paper's Sec. II-A motivation).
//
// Usage:
//
//	acbtrace -workload soplex -mode critpath
//	acbtrace -workload gcc -mode disasm
//	acbtrace -workload gcc -mode hammocks
package main

import (
	"flag"
	"fmt"
	"os"

	"acb/internal/critpath"
	"acb/internal/prog"
	"acb/internal/workload"
)

func main() {
	var (
		name  = flag.String("workload", "gcc", "workload name")
		mode  = flag.String("mode", "critpath", "disasm | hammocks | critpath | attribute | export")
		out   = flag.String("o", "", "output file for export mode (default stdout)")
		steps = flag.Int64("steps", 200_000, "trace length for critpath mode")
	)
	flag.Parse()

	w, err := workload.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, m := w.Build()

	switch *mode {
	case "disasm":
		fmt.Print(prog.Disassemble(p))

	case "hammocks":
		for _, hm := range prog.AnalyzeHammocks(p, 64) {
			fmt.Printf("branch pc=%-5d recon=%-5d takenLen=%-3d notTakenLen=%-3d simple=%v\n",
				hm.BranchPC, hm.ReconvPC, hm.TakenLen, hm.NotTakenLen, hm.Simple)
		}

	case "critpath":
		opts := critpath.DefaultCaptureOptions()
		opts.Steps = *steps
		trace := critpath.Capture(p, m, opts)
		res := critpath.Analyze(trace, critpath.DefaultModel())
		on, total := critpath.MispredictsOnPath(trace, res)
		fmt.Printf("workload          %s (%s)\n", w.Name, w.Category)
		fmt.Printf("trace             %d instructions, critical path %d cycles\n", len(trace), res.Length)
		fmt.Printf("mispredict share  %.1f%% of critical path\n", res.MispredictShare*100)
		fmt.Printf("memory share      %.1f%% of critical path\n", res.MemShare*100)
		if total > 0 {
			fmt.Printf("mispredictions    %d/%d on the critical path (%.1f%%)\n",
				on, total, float64(on)*100/float64(total))
		} else {
			fmt.Printf("mispredictions    none in trace\n")
		}

	case "export":
		opts := critpath.DefaultCaptureOptions()
		opts.Steps = *steps
		trace := critpath.Capture(p, m, opts)
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			dst = f
		}
		if err := critpath.WriteJSONL(dst, trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events\n", len(trace))

	case "attribute":
		opts := critpath.DefaultCaptureOptions()
		opts.Steps = *steps
		trace := critpath.Capture(p, m, opts)
		att := critpath.Attribute(trace, critpath.DefaultModel())
		fmt.Printf("critical path: %d cycles over %d instructions\n\n", att.TotalCycles, len(trace))
		fmt.Println("top misprediction contributors (the ACB criticality targets):")
		for _, s := range att.TopMispredictors(8) {
			fmt.Printf("  pc=%-5d  %-28s %8d cycles  %5.1f%%\n",
				s.PC, p[s.PC].String(), s.Cycles, s.Share*100)
		}
		fmt.Println("\ntop execution-latency contributors:")
		for _, s := range att.TopExecutors(8) {
			fmt.Printf("  pc=%-5d  %-28s %8d cycles  %5.1f%%\n",
				s.PC, p[s.PC].String(), s.Cycles, s.Share*100)
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
}
