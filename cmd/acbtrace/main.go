// Command acbtrace inspects workloads statically and through the
// Fields-style critical-path model: disassembly, hammock/reconvergence
// analysis, and the fraction of mispredictions that actually lie on the
// critical path (the paper's Sec. II-A motivation). Trace mode runs the
// cycle-level core with event tracing on and exports the pipeline events
// (dual-fetch windows, flushes, gate decisions) for chrome://tracing.
//
// Usage:
//
//	acbtrace -workload soplex -mode critpath
//	acbtrace -workload gcc -mode disasm
//	acbtrace -workload gcc -mode hammocks
//	acbtrace -workload astar -mode trace -format chrome -o trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/critpath"
	"acb/internal/ooo"
	"acb/internal/prog"
	"acb/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "gcc", "workload selector: name, trace:<file>, or adversarial entry")
		mode   = flag.String("mode", "critpath", "disasm | hammocks | critpath | attribute | export | trace")
		out    = flag.String("o", "", "output file for export/trace modes (default stdout)")
		steps  = flag.Int64("steps", 200_000, "trace length for critpath mode")
		budget = flag.Int64("budget", 400_000, "retired-instruction budget for trace mode")
		format = flag.String("format", "chrome", "trace mode output: chrome | text")
		scheme = flag.String("scheme", "acb", "trace mode scheme: acb | baseline")
		cap    = flag.Int("trace-cap", ooo.DefaultTraceCap, "event-ring capacity for trace mode (oldest events drop beyond it)")
	)
	flag.Parse()

	w, err := workload.Resolve(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, m := w.Build()

	switch *mode {
	case "disasm":
		fmt.Print(prog.Disassemble(p))

	case "hammocks":
		for _, hm := range prog.AnalyzeHammocks(p, 64) {
			fmt.Printf("branch pc=%-5d recon=%-5d takenLen=%-3d notTakenLen=%-3d simple=%v\n",
				hm.BranchPC, hm.ReconvPC, hm.TakenLen, hm.NotTakenLen, hm.Simple)
		}

	case "critpath":
		opts := critpath.DefaultCaptureOptions()
		opts.Steps = *steps
		trace := critpath.Capture(p, m, opts)
		res := critpath.Analyze(trace, critpath.DefaultModel())
		on, total := critpath.MispredictsOnPath(trace, res)
		fmt.Printf("workload          %s (%s)\n", w.Name, w.Category)
		fmt.Printf("trace             %d instructions, critical path %d cycles\n", len(trace), res.Length)
		fmt.Printf("mispredict share  %.1f%% of critical path\n", res.MispredictShare*100)
		fmt.Printf("memory share      %.1f%% of critical path\n", res.MemShare*100)
		if total > 0 {
			fmt.Printf("mispredictions    %d/%d on the critical path (%.1f%%)\n",
				on, total, float64(on)*100/float64(total))
		} else {
			fmt.Printf("mispredictions    none in trace\n")
		}

	case "export":
		opts := critpath.DefaultCaptureOptions()
		opts.Steps = *steps
		trace := critpath.Capture(p, m, opts)
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			dst = f
		}
		if err := critpath.WriteJSONL(dst, trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events\n", len(trace))

	case "attribute":
		opts := critpath.DefaultCaptureOptions()
		opts.Steps = *steps
		trace := critpath.Capture(p, m, opts)
		att := critpath.Attribute(trace, critpath.DefaultModel())
		fmt.Printf("critical path: %d cycles over %d instructions\n\n", att.TotalCycles, len(trace))
		fmt.Println("top misprediction contributors (the ACB criticality targets):")
		for _, s := range att.TopMispredictors(8) {
			fmt.Printf("  pc=%-5d  %-28s %8d cycles  %5.1f%%\n",
				s.PC, p[s.PC].String(), s.Cycles, s.Share*100)
		}
		fmt.Println("\ntop execution-latency contributors:")
		for _, s := range att.TopExecutors(8) {
			fmt.Printf("  pc=%-5d  %-28s %8d cycles  %5.1f%%\n",
				s.PC, p[s.PC].String(), s.Cycles, s.Share*100)
		}

	case "trace":
		var sch ooo.Scheme
		switch *scheme {
		case "acb":
			sch = core.New(core.DefaultConfig())
		case "baseline":
		default:
			fmt.Fprintf(os.Stderr, "unknown scheme %q (want acb or baseline)\n", *scheme)
			os.Exit(1)
		}
		c := ooo.NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), sch, m)
		ring := c.EnableTrace(*cap)
		if acb, ok := sch.(*core.ACB); ok {
			acb.SetTrace(ring)
		}
		c.EnableCPIStack()
		res, err := c.Run(*budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			dst = f
		}
		events := ring.Events()
		switch *format {
		case "chrome":
			if err := ooo.WriteChromeTrace(dst, events); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case "text":
			for _, ev := range events {
				fmt.Fprintf(dst, "cycle=%-8d %-14s pc=%-5d ctx=%-4d arg=%d\n",
					ev.Cycle, ev.Kind, ev.PC, ev.Ctx, ev.Arg)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown format %q (want chrome or text)\n", *format)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s/%s: %d events (%d dropped), IPC=%.3f\n",
			w.Name, res.Scheme, len(events), ring.Dropped(), res.IPC)
		if res.CPI != nil {
			fmt.Fprintf(os.Stderr, "cpi stack: %s\n", res.CPI)
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
}
