// Command acbbench measures the simulator's hot-loop throughput on the
// Fig. 6 workload sweep and writes a machine-readable snapshot
// (BENCH_cycleloop.json at the repository root). The committed snapshot is
// the performance baseline; CI's perf-gate job re-measures and compares
// with -compare, failing on a normalized-throughput regression or on
// allocation growth in the cycle loop.
//
// Raw cycles/sec is hardware-dependent, so every run also times a fixed
// pure-Go calibration loop (refScore). The gated quantity is
// cycles/sec ÷ refScore — simulated cycles per unit of local compute —
// which transfers across machines of different speeds. Allocations per
// simulated cycle are hardware-independent and gated strictly.
//
// Usage:
//
//	go run ./cmd/acbbench -out BENCH_cycleloop.json           # refresh baseline
//	go run ./cmd/acbbench -compare BENCH_cycleloop.json       # CI gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/workload"
)

// Snapshot is the serialized benchmark result set.
type Snapshot struct {
	GoVersion string         `json:"go_version"`
	GOARCH    string         `json:"goarch"`
	Budget    int64          `json:"budget"`
	RefScore  float64        `json:"ref_score"` // calibration loop iterations/sec
	Rows      []WorkloadRow  `json:"workloads"`
	Geomean   GeomeanSummary `json:"geomean"`
}

// WorkloadRow is one (workload, scheme) measurement.
type WorkloadRow struct {
	Name          string  `json:"name"`
	Scheme        string  `json:"scheme"`
	Cycles        int64   `json:"cycles"`
	Retired       int64   `json:"retired"`
	WallSec       float64 `json:"wall_sec"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	Normalized    float64 `json:"normalized_cps"` // cycles_per_sec / ref_score
	Mallocs       uint64  `json:"mallocs"`
	AllocsPerKCyc float64 `json:"allocs_per_kcycle"`
}

// GeomeanSummary aggregates the gated quantities.
type GeomeanSummary struct {
	NormalizedCPS float64 `json:"normalized_cps"`
	AllocsPerKCyc float64 `json:"allocs_per_kcycle"` // arithmetic mean (zeros are legal)
}

// throughputTolerance is the allowed fractional drop in normalized
// geomean throughput before the gate fails.
const throughputTolerance = 0.10

// allocSlack is the allowed fractional growth in per-workload
// allocs/kcycle, plus an absolute floor so near-zero baselines don't trip
// on runtime jitter (a map rehash landing differently, etc.).
const (
	allocSlackFrac = 0.05
	allocSlackAbs  = 0.5 // allocs per kilocycle
)

func main() {
	var (
		out     = flag.String("out", "BENCH_cycleloop.json", "write the measured snapshot here ('' to skip)")
		compare = flag.String("compare", "", "baseline snapshot to gate against (exit 1 on regression)")
		budget  = flag.Int64("budget", 400_000, "retired-instruction budget per simulation")
		repeat  = flag.Int("repeat", 3, "measurement repetitions; the fastest wall time wins")
	)
	flag.Parse()

	snap, err := measure(*budget, *repeat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acbbench: %v\n", err)
		os.Exit(2)
	}

	if *out != "" {
		buf, _ := json.MarshalIndent(snap, "", "  ")
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "acbbench: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	fmt.Printf("ref_score %.3g/s   geomean normalized %.4g   allocs/kcycle %.3f\n",
		snap.RefScore, snap.Geomean.NormalizedCPS, snap.Geomean.AllocsPerKCyc)

	if *compare != "" {
		base, err := load(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acbbench: %v\n", err)
			os.Exit(2)
		}
		if gate(base, snap) {
			fmt.Println("perf gate: PASS")
			return
		}
		os.Exit(1)
	}
}

// refScore times a fixed xorshift/sum loop — pure integer compute, no
// allocation — as a proxy for the host's single-thread speed.
func refScore() float64 {
	const iters = 1 << 26
	best := 0.0
	for r := 0; r < 3; r++ {
		x := uint64(0x9E3779B97F4A7C15)
		var sum uint64
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			sum += x
		}
		el := time.Since(t0).Seconds()
		if sum == 42 { // defeat dead-code elimination
			fmt.Fprintln(os.Stderr, "impossible")
		}
		if s := float64(iters) / el; s > best {
			best = s
		}
	}
	return best
}

// measure runs the Fig. 6 sweep (baseline and ACB engines per workload)
// and assembles a snapshot.
func measure(budget int64, repeat int) (*Snapshot, error) {
	snap := &Snapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Budget:    budget,
		RefScore:  refScore(),
	}
	schemes := []string{"baseline", "acb"}
	var normalized, allocs []float64
	for _, w := range workload.All() {
		for _, sch := range schemes {
			row, err := measureOne(&w, sch, budget, repeat)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, sch, err)
			}
			row.Normalized = row.CyclesPerSec / snap.RefScore
			snap.Rows = append(snap.Rows, *row)
			normalized = append(normalized, row.Normalized)
			allocs = append(allocs, row.AllocsPerKCyc)
		}
	}
	snap.Geomean.NormalizedCPS = stats.Geomean(normalized)
	var sum float64
	for _, a := range allocs {
		sum += a
	}
	snap.Geomean.AllocsPerKCyc = sum / float64(len(allocs))
	return snap, nil
}

// measureOne times one (workload, scheme) simulation. Engines run bare
// (no observers), matching the throughput configuration the cycle loop is
// optimized for. Simulated cycles and allocation counts are deterministic
// across repetitions; wall time takes the fastest of `repeat` runs.
func measureOne(w *workload.Workload, sch string, budget int64, repeat int) (*WorkloadRow, error) {
	row := &WorkloadRow{Name: w.Name, Scheme: sch}
	for r := 0; r < repeat; r++ {
		p, m := w.Build()
		var scheme ooo.Scheme
		if sch == "acb" {
			scheme = core.New(core.DefaultConfig())
		}
		c := ooo.NewWithMemory(config.Skylake(), p,
			bpu.NewTAGE(bpu.DefaultTAGEConfig()), scheme, m)

		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		t0 := time.Now()
		res, err := c.Run(budget)
		wall := time.Since(t0).Seconds()
		runtime.ReadMemStats(&msAfter)
		if err != nil {
			return nil, err
		}

		mallocs := msAfter.Mallocs - msBefore.Mallocs
		if r == 0 || wall < row.WallSec {
			row.WallSec = wall
		}
		// Deterministic quantities: take them from the first rep, and use
		// the minimum malloc count thereafter (a concurrent GC cycle can
		// only add to the delta, never subtract).
		if r == 0 || mallocs < row.Mallocs {
			row.Mallocs = mallocs
		}
		row.Cycles = res.Cycles
		row.Retired = res.Retired
	}
	row.CyclesPerSec = float64(row.Cycles) / row.WallSec
	row.AllocsPerKCyc = float64(row.Mallocs) / float64(row.Cycles) * 1000
	return row, nil
}

func load(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// gate compares the fresh measurement against the committed baseline and
// reports whether it passes. Throughput is compared via the
// hardware-normalized geomean; allocations per kilocycle are compared
// per (workload, scheme) row.
func gate(base, cur *Snapshot) bool {
	ok := true
	if base.Budget != cur.Budget {
		fmt.Fprintf(os.Stderr, "perf gate: budget mismatch (baseline %d, current %d) — not comparable\n",
			base.Budget, cur.Budget)
		return false
	}

	floor := base.Geomean.NormalizedCPS * (1 - throughputTolerance)
	if cur.Geomean.NormalizedCPS < floor {
		fmt.Fprintf(os.Stderr,
			"perf gate: FAIL normalized throughput geomean %.4g < %.4g (baseline %.4g - %d%%)\n",
			cur.Geomean.NormalizedCPS, floor, base.Geomean.NormalizedCPS, int(throughputTolerance*100))
		ok = false
	} else {
		fmt.Printf("throughput: normalized geomean %.4g vs baseline %.4g (floor %.4g) ok\n",
			cur.Geomean.NormalizedCPS, base.Geomean.NormalizedCPS, floor)
	}

	baseRows := map[string]WorkloadRow{}
	for _, r := range base.Rows {
		baseRows[r.Name+"/"+r.Scheme] = r
	}
	keys := make([]string, 0, len(cur.Rows))
	curRows := map[string]WorkloadRow{}
	for _, r := range cur.Rows {
		k := r.Name + "/" + r.Scheme
		keys = append(keys, k)
		curRows[k] = r
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, found := baseRows[k]
		if !found {
			continue // new workload: no baseline yet
		}
		c := curRows[k]
		limit := b.AllocsPerKCyc*(1+allocSlackFrac) + allocSlackAbs
		if c.AllocsPerKCyc > limit {
			fmt.Fprintf(os.Stderr, "perf gate: FAIL %s allocs/kcycle %.3f > %.3f (baseline %.3f)\n",
				k, c.AllocsPerKCyc, limit, b.AllocsPerKCyc)
			ok = false
		}
	}
	if ok {
		fmt.Printf("allocations: all %d rows within %.0f%%+%.1f of baseline\n",
			len(keys), allocSlackFrac*100, allocSlackAbs)
	}
	return ok
}
