package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// testClock is the fixed "now" test policies compute HTTP-date
// Retry-After waits against.
var testClock = time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)

// testPolicy returns a deterministic policy that records sleeps
// instead of performing them.
func testPolicy(tries int) (*retryPolicy, *[]time.Duration) {
	var slept []time.Duration
	p := &retryPolicy{
		tries: tries,
		base:  100 * time.Millisecond,
		max:   time.Second,
		rng:   rand.New(rand.NewSource(1)),
		sleep: func(d time.Duration) { slept = append(slept, d) },
		now:   func() time.Time { return testClock },
	}
	return p, &slept
}

// refuseThenAccept answers n refusals with the given status (and
// optional Retry-After seconds) before accepting with 201.
func refuseThenAccept(n int32, status int, retryAfter string) (*httptest.Server, *int32) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			fmt.Fprint(w, `{"error":"busy"}`)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{"id":"j1","state":"queued"}`)
	}))
	return ts, &calls
}

func TestSubmitRetryHonorsRetryAfter(t *testing.T) {
	ts, calls := refuseThenAccept(2, http.StatusTooManyRequests, "2")
	defer ts.Close()
	p, slept := testPolicy(5)

	resp, err := p.post(ts.Client(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	if *calls != 3 {
		t.Fatalf("server saw %d requests, want 3", *calls)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	for i, d := range *slept {
		// Retry-After: 2 means at least 2s, plus jitter bounded by base/2.
		if d < 2*time.Second || d > 2*time.Second+p.base/2 {
			t.Errorf("sleep %d = %s, want within [2s, 2s+%s]", i, d, p.base/2)
		}
	}
}

func TestSubmitRetryBackoffWithoutHint(t *testing.T) {
	ts, calls := refuseThenAccept(3, http.StatusServiceUnavailable, "")
	defer ts.Close()
	p, slept := testPolicy(5)

	resp, err := p.post(ts.Client(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	if *calls != 4 {
		t.Fatalf("server saw %d requests, want 4", *calls)
	}
	// Equal-jitter exponential: attempt k waits within [base<<k/2, base<<k].
	for i, d := range *slept {
		full := p.base << uint(i)
		if d < full/2 || d > full {
			t.Errorf("sleep %d = %s, want within [%s, %s]", i, d, full/2, full)
		}
	}
}

func TestSubmitRetryExhaustionReturnsRefusal(t *testing.T) {
	ts, calls := refuseThenAccept(100, http.StatusTooManyRequests, "0")
	defer ts.Close()
	p, slept := testPolicy(3)

	resp, err := p.post(ts.Client(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want the final 429 surfaced", resp.StatusCode)
	}
	if *calls != 3 {
		t.Fatalf("server saw %d requests, want exactly the %d budgeted", *calls, p.tries)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
}

func TestSubmitNoRetryOnHardError(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"unknown experiment"}`)
	}))
	defer ts.Close()
	p, slept := testPolicy(5)

	resp, err := p.post(ts.Client(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 passed through", resp.StatusCode)
	}
	if got := atomic.LoadInt32(&calls); got != 1 || len(*slept) != 0 {
		t.Fatalf("calls=%d slept=%d; 4xx other than 429 must not retry", got, len(*slept))
	}
}

func TestSubmitRetryHonorsHTTPDate(t *testing.T) {
	// RFC 9110 allows Retry-After as an HTTP-date; the wait is the gap to
	// the local clock.
	after := testClock.Add(3 * time.Second).UTC().Format(http.TimeFormat)
	ts, calls := refuseThenAccept(1, http.StatusServiceUnavailable, after)
	defer ts.Close()
	p, slept := testPolicy(5)

	resp, err := p.post(ts.Client(), ts.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	if *calls != 2 || len(*slept) != 1 {
		t.Fatalf("calls=%d slept=%d, want 2 calls / 1 sleep", *calls, len(*slept))
	}
	if d := (*slept)[0]; d < 3*time.Second || d > 3*time.Second+p.base/2 {
		t.Errorf("sleep = %s, want within [3s, 3s+%s]", d, p.base/2)
	}
}

func TestRetryAfterParsing(t *testing.T) {
	p, _ := testPolicy(3)
	httpDate := func(d time.Duration) string { return testClock.Add(d).UTC().Format(http.TimeFormat) }
	cases := []struct {
		name, header string
		want         time.Duration
		ok           bool
	}{
		{"delta-seconds", "7", 7 * time.Second, true},
		{"delta-zero", "0", 0, true},
		{"delta-clamped", "100000", maxRetryAfter, true},
		{"delta-negative", "-3", 0, false},
		{"http-date", httpDate(90 * time.Second), 90 * time.Second, true},
		{"http-date-past", httpDate(-time.Hour), 0, true},
		{"http-date-clamped", httpDate(24 * time.Hour), maxRetryAfter, true},
		{"empty", "", 0, false},
		{"garbage", "soon", 0, false},
	}
	for _, tc := range cases {
		got, ok := p.parseRetryAfter(tc.header)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: parseRetryAfter(%q) = (%s, %v), want (%s, %v)",
				tc.name, tc.header, got, ok, tc.want, tc.ok)
		}
	}
}

func TestParsePeers(t *testing.T) {
	members, err := parsePeers("w1=http://h1:8315, w2=http://h2:8315/")
	if err != nil {
		t.Fatalf("parsePeers: %v", err)
	}
	if len(members) != 2 || members[0].Name != "w1" || members[1].URL != "http://h2:8315" {
		t.Fatalf("parsePeers = %+v", members)
	}
	for _, bad := range []string{"", "w1", "w1=", "=http://x", "w1=a,w1=b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}
