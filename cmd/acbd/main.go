// Command acbd is the simulation service daemon and its client.
//
// Serve mode runs one node. -role picks which kind:
//
//	acbd serve -addr :8315 -store-dir /var/lib/acbd -workers 2
//	acbd serve -role worker -node w1 -peers w1=http://h1:8315,w2=http://h2:8315
//	acbd serve -role coordinator -node coord -peers w1=http://h1:8315,w2=http://h2:8315
//
// A worker is a normal daemon whose result store peer-fetches by key
// from the shard owning it; a coordinator fronts the fleet with the
// same job API plus batch submission, streaming results and aggregated
// metrics. With -journal the coordinator write-ahead-logs every
// placement and completion and replays it on restart; a second
// coordinator started with -standby <primary-url> tails that journal
// over HTTP and promotes itself — at a higher fencing epoch — when the
// primary goes silent:
//
//	acbd serve -role coordinator -node cb -standby http://ca:8315 \
//	    -peers w1=http://h1:8315,w2=http://h2:8315 -journal /var/lib/acbd/cb.journal
//
// Client mode submits one experiment to a running daemon or
// coordinator and (with -wait) polls it to completion:
//
//	acbd submit -addr http://localhost:8315 -experiment fig6 -workloads lammps,gobmk -wait -format ascii
//
// See docs/SERVICE.md and docs/CLUSTER.md for the API.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"acb/internal/cluster"
	"acb/internal/faultinject"
	"acb/internal/service"
	"acb/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "submit":
		err = submit(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "acbd: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "acbd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  acbd serve  [-role single|worker|coordinator] [-node NAME] [-peers n1=url,n2=url,...]
              [-addr :8315] [-store-dir DIR] [-store-cap N] [-journal FILE] [-queue N] [-workers N] [-jobs N]
              [-timeout D] [-max-timeout D] [-retries N] [-drain-timeout D] [-debug-addr :6060]
              [-probe-interval D] [-poll-interval D] [-dead-after N]
              [-standby PRIMARY_URL] [-lease FILE]
              [-fault-spec SPEC] [-fault-seed N]
  acbd submit [-addr URL] -experiment NAME [-workloads a,b] [-budget N] [-config NAME] [-timeout D]
              [-wait] [-format json|csv|ascii] [-submit-retries N]
`)
}

// parsePeers parses "name=url,name=url" into ordered members.
func parsePeers(spec string) ([]cluster.Member, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("empty -peers")
	}
	var members []cluster.Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		name, url = strings.TrimSpace(name), strings.TrimRight(strings.TrimSpace(url), "/")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("peer %q: want name=url", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate peer name %q", name)
		}
		seen[name] = true
		members = append(members, cluster.Member{Name: name, URL: url})
	}
	return members, nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("acbd serve", flag.ExitOnError)
	var (
		role       = fs.String("role", "single", "node role: single | worker | coordinator")
		node       = fs.String("node", "", "node identity, stamped on every metrics series and used as the ring/membership name (default: hostname)")
		peersSpec  = fs.String("peers", "", "fleet membership as name=url,...: for -role worker the full fleet including this node; for -role coordinator the worker shards")
		addr       = fs.String("addr", ":8315", "HTTP listen address")
		storeDir   = fs.String("store-dir", "", "directory for the on-disk result tier (empty = memory only)")
		storeCap   = fs.Int("store-cap", 256, "tables held in the in-memory LRU tier")
		journalPth = fs.String("journal", "", "write-ahead job journal file; queued and running jobs survive a crash and re-run on restart (empty = disabled; conventionally <store-dir>/journal.jsonl)")
		queue      = fs.Int("queue", 64, "bounded job-queue depth (backpressure beyond it)")
		workers    = fs.Int("workers", 1, "jobs running concurrently")
		simJobs    = fs.Int("jobs", 0, "concurrent simulations per job (0 = GOMAXPROCS)")
		timeout    = fs.Duration("timeout", 0, "default per-job deadline for requests without timeout_ms (0 = none)")
		maxTimeout = fs.Duration("max-timeout", time.Hour, "cap on request-supplied job deadlines")
		retries    = fs.Int("retries", 3, "max runs per job (first run + retries of transient failures)")
		drain      = fs.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown drain budget before cancelling running jobs")
		debug      = fs.String("debug-addr", "", "listen address for net/http/pprof (empty = disabled; keep it off the service port)")
		probeIvl   = fs.Duration("probe-interval", 500*time.Millisecond, "coordinator: worker heartbeat period")
		pollIvl    = fs.Duration("poll-interval", 250*time.Millisecond, "coordinator: job reconcile/steal period")
		deadAfter  = fs.Int("dead-after", 3, "coordinator: consecutive failed probes before a worker is declared dead")
		standbyURL = fs.String("standby", "", "coordinator: run as a warm standby tailing this primary's journal; promotes when its heartbeats lapse")
		leasePth   = fs.String("lease", "", "coordinator: fsync'd fencing-epoch lease file (default: <journal>.lease when -journal is set)")
		faultSpec  = fs.String("fault-spec", "", "fault-injection rules, e.g. 'store.persist:error,prob=0.2;rpc.w2:error,nth=3,after=20,limit=10' (chaos testing only)")
		faultSeed  = fs.Int64("fault-seed", 1, "seed for probabilistic fault injection (reproducible chaos)")
		verbose    = fs.Bool("v", false, "per-job progress on stderr")
	)
	fs.Parse(args)
	if *node == "" {
		if hn, err := os.Hostname(); err == nil && hn != "" {
			*node = hn
		} else {
			*node = "acbd"
		}
	}
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = func(format string, a ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	var inj *faultinject.Injector
	if *faultSpec != "" {
		var err error
		if inj, err = faultinject.Parse(*faultSpec, *faultSeed); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "acbd: CHAOS MODE: injecting faults: %s (seed %d)\n", *faultSpec, *faultSeed)
	}

	store, err := service.NewStore(*storeCap, *storeDir)
	if err != nil {
		return err
	}
	if inj != nil {
		store.SetFaults(inj)
	}

	if *role == "coordinator" {
		members, err := parsePeers(*peersSpec)
		if err != nil {
			return fmt.Errorf("coordinator: %w", err)
		}
		ccfg := cluster.Config{
			Node:          *node,
			Workers:       members,
			QueueDepth:    *queue,
			ProbeInterval: *probeIvl,
			PollInterval:  *pollIvl,
			DeadAfter:     *deadAfter,
			Logf:          logf,
		}
		if inj != nil {
			ccfg.Faults = inj
		}
		if *leasePth == "" && *journalPth != "" {
			*leasePth = *journalPth + ".lease"
		}
		lease, err := cluster.OpenLease(*leasePth, *node)
		if err != nil {
			return err
		}
		if inj != nil {
			lease.SetFaults(inj)
		}

		if *standbyURL != "" {
			stb, err := cluster.NewStandby(cluster.StandbyConfig{
				Primary:     strings.TrimRight(*standbyURL, "/"),
				JournalPath: *journalPth,
				Lease:       lease,
				Cluster:     ccfg,
				Store:       store,
			})
			if err != nil {
				return err
			}
			stb.Start()
			fmt.Fprintf(os.Stderr, "acbd: standby coordinator %s tailing %s\n", *node, *standbyURL)
			return listenAndDrain(*addr, *debug, *drain, stb.Handler(), stb.Shutdown,
				fmt.Sprintf("standby-for=%q journal=%q", *standbyURL, *journalPth))
		}

		// Primary: every start claims a fresh, higher epoch. With -lease
		// the epoch is fsync'd and survives restarts; without it fencing
		// only orders coordinators within one process lifetime.
		if err := lease.Advance(lease.Epoch() + 1); err != nil {
			return fmt.Errorf("lease: %w", err)
		}
		ccfg.Epoch = lease.Epoch()
		if *journalPth != "" {
			journal, replay, err := cluster.OpenJournal(*journalPth)
			if err != nil {
				return fmt.Errorf("cluster journal: %w", err)
			}
			if inj != nil {
				journal.SetFaults(inj)
			}
			ccfg.Journal = journal
			ccfg.Replay = replay
			if len(replay) > 0 {
				fmt.Fprintf(os.Stderr, "acbd: cluster journal %s: replaying %d job(s)\n",
					*journalPth, len(replay))
			}
		}
		coord, err := cluster.New(ccfg, store)
		if err != nil {
			return err
		}
		coord.Start()
		fmt.Fprintf(os.Stderr, "acbd: coordinator %s over %d workers (epoch %d)\n", *node, len(members), ccfg.Epoch)
		return listenAndDrain(*addr, *debug, *drain, cluster.NewServer(coord).Handler(),
			coord.Shutdown, fmt.Sprintf("store-dir=%q workers=%d queue=%d epoch=%d", *storeDir, len(members), *queue, ccfg.Epoch))
	}
	if *standbyURL != "" || *leasePth != "" {
		return errors.New("-standby and -lease require -role coordinator")
	}

	cfg := service.SchedulerConfig{
		QueueDepth:     *queue,
		Workers:        *workers,
		SimJobs:        *simJobs,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxAttempts:    *retries,
		Logf:           logf,
	}
	if inj != nil {
		cfg.Faults = inj
	}
	if *journalPth != "" {
		journal, replay, err := service.OpenJournal(*journalPth)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		cfg.Journal = journal
		cfg.Replay = replay
		if len(replay) > 0 {
			fmt.Fprintf(os.Stderr, "acbd: journal %s: replaying %d interrupted/queued job(s)\n",
				*journalPth, len(replay))
		}
	}

	switch *role {
	case "single":
		if *peersSpec != "" {
			return errors.New("-peers requires -role worker or coordinator")
		}
	case "worker":
		// The peer result cache: this shard fetches keys it misses from
		// the owning shard. The fleet must include this node so the ring
		// places this shard's own keys here (a local miss on an owned key
		// means "not computed yet", never a peer fetch).
		members, err := parsePeers(*peersSpec)
		if err != nil {
			return fmt.Errorf("worker: %w", err)
		}
		mm := make(map[string]string, len(members))
		for _, m := range members {
			mm[m.Name] = m.URL
		}
		if _, ok := mm[*node]; !ok {
			return fmt.Errorf("worker: node %q not in -peers (the fleet must include this node)", *node)
		}
		store.SetPeers(cluster.PeerFetcher(*node, mm, cluster.NewClient(0, faultsOrNil(inj))), 0)
		fmt.Fprintf(os.Stderr, "acbd: worker %s in a %d-shard fleet\n", *node, len(members))
	default:
		return fmt.Errorf("unknown -role %q (want single, worker or coordinator)", *role)
	}

	sched := service.NewScheduler(cfg, store)
	ssrv := service.NewServer(sched)
	ssrv.SetNode(*node)
	handler := ssrv.Handler()
	if *role == "worker" {
		// The epoch fence: coordinator RPCs carry X-Acbd-Epoch; anything
		// below the highest epoch seen here is rejected 409, which is what
		// keeps a fenced-out old primary from mutating this worker after a
		// failover. Readiness dips until the new coordinator reconciles us.
		fence := cluster.NewFence()
		ssrv.AddReadyCheck(fence.Ready)
		handler = fence.Middleware(handler)
	}
	return listenAndDrain(*addr, *debug, *drain, handler, sched.Shutdown,
		fmt.Sprintf("store-dir=%q workers=%d queue=%d", *storeDir, *workers, *queue))
}

// faultsOrNil avoids wrapping a nil *Injector in a non-nil interface.
func faultsOrNil(inj *faultinject.Injector) service.FaultPoints {
	if inj == nil {
		return nil
	}
	return inj
}

// listenAndDrain serves handler on addr until SIGINT/SIGTERM, then
// stops accepting HTTP and drains via shutdown within the drain budget.
func listenAndDrain(addr, debug string, drain time.Duration, handler http.Handler, shutdown func(context.Context) error, banner string) error {
	srv := &http.Server{Addr: addr, Handler: handler}

	// pprof rides on its own listener so the profiling surface never
	// shares a port with the public API. The net/http/pprof import
	// registers onto http.DefaultServeMux, which nothing else uses.
	var dbgSrv *http.Server
	if debug != "" {
		dbgSrv = &http.Server{Addr: debug, Handler: http.DefaultServeMux}
		go func() {
			fmt.Fprintf(os.Stderr, "acbd: pprof on %s\n", debug)
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "acbd: pprof server: %v\n", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "acbd: listening on %s (%s)\n", addr, banner)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "acbd: %v: draining (timeout %s)\n", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop accepting HTTP first, then drain the scheduler (or the
	// coordinator's in-flight fleet work); the write-through store has
	// nothing left to persist afterwards.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "acbd: http shutdown: %v\n", err)
	}
	if dbgSrv != nil {
		_ = dbgSrv.Shutdown(ctx)
	}
	if err := shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w (running jobs were cancelled)", err)
	}
	fmt.Fprintln(os.Stderr, "acbd: drained cleanly")
	return nil
}

// retryPolicy retries transiently-refused submissions — 429 (queue
// full) and 503 (draining/not ready) — honoring the server's
// Retry-After hint when it parses and falling back to equal-jitter
// exponential backoff so a herd of refused clients spreads back out.
type retryPolicy struct {
	tries int           // total attempts, including the first
	base  time.Duration // backoff for the first retry
	max   time.Duration // backoff ceiling
	rng   *rand.Rand
	sleep func(time.Duration)
	now   func() time.Time // for Retry-After HTTP-date arithmetic
}

// maxRetryAfter caps how long a server-sent Retry-After hint can make a
// client wait — a clock-skewed HTTP date (or a hostile header) must not
// park a submission for hours.
const maxRetryAfter = 5 * time.Minute

func defaultRetryPolicy(tries int) *retryPolicy {
	return &retryPolicy{tries: tries, base: 500 * time.Millisecond, max: 30 * time.Second,
		rng: rand.New(rand.NewSource(time.Now().UnixNano())), sleep: time.Sleep, now: time.Now}
}

// post issues the request, retrying per the policy. The returned
// response is the last one received with its body unread; a final
// refusal after the budget is exhausted comes back as-is for the
// caller to surface.
func (p *retryPolicy) post(client *http.Client, url, contentType string, body []byte) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		if attempt+1 >= p.tries {
			return resp, nil
		}
		d := p.delay(attempt, resp.Header.Get("Retry-After"))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "acbd: %s; retrying in %s (attempt %d/%d)\n",
			resp.Status, d.Round(time.Millisecond), attempt+2, p.tries)
		p.sleep(d)
	}
}

// delay picks the wait before the next attempt: the Retry-After hint
// plus a little jitter when the server sent one, equal-jitter
// exponential backoff otherwise.
func (p *retryPolicy) delay(attempt int, retryAfter string) time.Duration {
	if hint, ok := p.parseRetryAfter(retryAfter); ok {
		return hint + time.Duration(p.rng.Int63n(int64(p.base/2)+1))
	}
	d := p.base << uint(attempt)
	if d > p.max || d <= 0 {
		d = p.max
	}
	half := d / 2
	return half + time.Duration(p.rng.Int63n(int64(half)+1))
}

// parseRetryAfter interprets a Retry-After header in both RFC 9110 forms:
// delta-seconds and HTTP-date (the date converts to a wait against the
// local clock; one already in the past means "retry now"). Either form is
// clamped to maxRetryAfter. Returns ok=false for absent or unparseable
// values, which sends the caller to exponential backoff.
func (p *retryPolicy) parseRetryAfter(retryAfter string) (time.Duration, bool) {
	v := strings.TrimSpace(retryAfter)
	if v == "" {
		return 0, false
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		d = time.Duration(secs) * time.Second
	} else if when, err := http.ParseTime(v); err == nil {
		d = when.Sub(p.now())
		if d < 0 {
			d = 0
		}
	} else {
		return 0, false
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

func submit(args []string) error {
	fs := flag.NewFlagSet("acbd submit", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "http://localhost:8315", "daemon base URL")
		exp       = fs.String("experiment", "", "experiment name (required; see acbsweep -h)")
		workloads = fs.String("workloads", "", "comma-separated workload subset (default: full suite)")
		budget    = fs.Int64("budget", 0, "retired-instruction budget per simulation (0 = server default)")
		cfgName   = fs.String("config", "", "core configuration (default skylake)")
		timeout   = fs.Duration("timeout", 0, "job deadline, sent as timeout_ms (0 = server default; capped by the server)")
		wait      = fs.Bool("wait", false, "poll the job to completion and print the result table")
		format    = fs.String("format", "json", "result rendering with -wait: json | csv | ascii")
		interval  = fs.Duration("poll-interval", 250*time.Millisecond, "poll period with -wait")
		retries   = fs.Int("submit-retries", 5, "total submission attempts when the server answers 429/503")
	)
	fs.Parse(args)
	if *exp == "" {
		return errors.New("submit: -experiment is required")
	}
	if *retries < 1 {
		*retries = 1
	}

	req := service.Request{Experiment: *exp, Budget: *budget, Config: *cfgName,
		TimeoutMS: timeout.Milliseconds()}
	if *workloads != "" {
		for _, n := range strings.Split(*workloads, ",") {
			req.Workloads = append(req.Workloads, strings.TrimSpace(n))
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	resp, err := defaultRetryPolicy(*retries).post(http.DefaultClient, base+"/v1/jobs", "application/json", body)
	if err != nil {
		return err
	}
	var job service.JobStatus
	if err := decode(resp, &job); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "acbd: job %s %s (key %s)\n", job.ID, job.State, job.ResultKey)
	if !*wait {
		return json.NewEncoder(os.Stdout).Encode(job)
	}

	for job.State == service.JobQueued || job.State == service.JobRunning {
		time.Sleep(*interval)
		resp, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			return err
		}
		if err := decode(resp, &job); err != nil {
			return err
		}
	}
	if job.State != service.JobDone {
		return fmt.Errorf("submit: job %s %s: %s", job.ID, job.State, job.Error)
	}

	resp, err = http.Get(base + "/v1/results/" + job.ResultKey)
	if err != nil {
		return err
	}
	var tab stats.Table
	if err := decode(resp, &tab); err != nil {
		return err
	}
	switch *format {
	case "json":
		b, err := json.Marshal(&tab)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	case "csv":
		fmt.Print(tab.CSV())
	case "ascii":
		fmt.Print(tab.String())
	default:
		return fmt.Errorf("submit: unknown format %q", *format)
	}
	return nil
}

// decode reads an API response, turning non-2xx statuses into errors.
func decode(resp *http.Response, v interface{}) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, ae.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return json.Unmarshal(b, v)
}
