// Command acbd is the simulation service daemon and its client.
//
// Serve mode runs the scheduler, content-addressed result store and HTTP
// API from internal/service:
//
//	acbd serve -addr :8315 -store-dir /var/lib/acbd -workers 2
//
// Client mode submits one experiment to a running daemon and (with
// -wait) polls it to completion and prints the result table:
//
//	acbd submit -addr http://localhost:8315 -experiment fig6 -workloads lammps,gobmk -wait -format ascii
//
// See docs/SERVICE.md for the API.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"acb/internal/faultinject"
	"acb/internal/service"
	"acb/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "submit":
		err = submit(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "acbd: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "acbd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  acbd serve  [-addr :8315] [-store-dir DIR] [-store-cap N] [-journal FILE] [-queue N] [-workers N] [-jobs N]
              [-timeout D] [-max-timeout D] [-retries N] [-drain-timeout D] [-debug-addr :6060]
              [-fault-spec SPEC] [-fault-seed N]
  acbd submit [-addr URL] -experiment NAME [-workloads a,b] [-budget N] [-config NAME] [-timeout D] [-wait] [-format json|csv|ascii]
`)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("acbd serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8315", "HTTP listen address")
		storeDir   = fs.String("store-dir", "", "directory for the on-disk result tier (empty = memory only)")
		storeCap   = fs.Int("store-cap", 256, "tables held in the in-memory LRU tier")
		journalPth = fs.String("journal", "", "write-ahead job journal file; queued and running jobs survive a crash and re-run on restart (empty = disabled; conventionally <store-dir>/journal.jsonl)")
		queue      = fs.Int("queue", 64, "bounded job-queue depth (backpressure beyond it)")
		workers    = fs.Int("workers", 1, "jobs running concurrently")
		simJobs    = fs.Int("jobs", 0, "concurrent simulations per job (0 = GOMAXPROCS)")
		timeout    = fs.Duration("timeout", 0, "default per-job deadline for requests without timeout_ms (0 = none)")
		maxTimeout = fs.Duration("max-timeout", time.Hour, "cap on request-supplied job deadlines")
		retries    = fs.Int("retries", 3, "max runs per job (first run + retries of transient failures)")
		drain      = fs.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown drain budget before cancelling running jobs")
		debug      = fs.String("debug-addr", "", "listen address for net/http/pprof (empty = disabled; keep it off the service port)")
		faultSpec  = fs.String("fault-spec", "", "fault-injection rules, e.g. 'store.persist:error,prob=0.2;worker:panic,nth=5' (chaos testing only)")
		faultSeed  = fs.Int64("fault-seed", 1, "seed for probabilistic fault injection (reproducible chaos)")
		verbose    = fs.Bool("v", false, "per-job progress on stderr")
	)
	fs.Parse(args)

	store, err := service.NewStore(*storeCap, *storeDir)
	if err != nil {
		return err
	}
	cfg := service.SchedulerConfig{
		QueueDepth:     *queue,
		Workers:        *workers,
		SimJobs:        *simJobs,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxAttempts:    *retries,
	}
	if *verbose {
		cfg.Logf = func(format string, a ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	if *faultSpec != "" {
		inj, err := faultinject.Parse(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		cfg.Faults = inj
		store.SetFaults(inj)
		fmt.Fprintf(os.Stderr, "acbd: CHAOS MODE: injecting faults: %s (seed %d)\n", *faultSpec, *faultSeed)
	}
	if *journalPth != "" {
		journal, replay, err := service.OpenJournal(*journalPth)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		cfg.Journal = journal
		cfg.Replay = replay
		if len(replay) > 0 {
			fmt.Fprintf(os.Stderr, "acbd: journal %s: replaying %d interrupted/queued job(s)\n",
				*journalPth, len(replay))
		}
	}
	sched := service.NewScheduler(cfg, store)
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(sched).Handler()}

	// pprof rides on its own listener so the profiling surface never
	// shares a port with the public API. The net/http/pprof import
	// registers onto http.DefaultServeMux, which nothing else uses.
	var dbgSrv *http.Server
	if *debug != "" {
		dbgSrv = &http.Server{Addr: *debug, Handler: http.DefaultServeMux}
		go func() {
			fmt.Fprintf(os.Stderr, "acbd: pprof on %s\n", *debug)
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "acbd: pprof server: %v\n", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "acbd: listening on %s (store-dir=%q workers=%d queue=%d)\n",
			*addr, *storeDir, *workers, *queue)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "acbd: %v: draining (timeout %s)\n", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting HTTP first, then drain the scheduler; the
	// write-through store has nothing left to persist afterwards.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "acbd: http shutdown: %v\n", err)
	}
	if dbgSrv != nil {
		_ = dbgSrv.Shutdown(ctx)
	}
	if err := sched.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w (running jobs were cancelled)", err)
	}
	fmt.Fprintln(os.Stderr, "acbd: drained cleanly")
	return nil
}

func submit(args []string) error {
	fs := flag.NewFlagSet("acbd submit", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "http://localhost:8315", "daemon base URL")
		exp       = fs.String("experiment", "", "experiment name (required; see acbsweep -h)")
		workloads = fs.String("workloads", "", "comma-separated workload subset (default: full suite)")
		budget    = fs.Int64("budget", 0, "retired-instruction budget per simulation (0 = server default)")
		cfgName   = fs.String("config", "", "core configuration (default skylake)")
		timeout   = fs.Duration("timeout", 0, "job deadline, sent as timeout_ms (0 = server default; capped by the server)")
		wait      = fs.Bool("wait", false, "poll the job to completion and print the result table")
		format    = fs.String("format", "json", "result rendering with -wait: json | csv | ascii")
		interval  = fs.Duration("poll-interval", 250*time.Millisecond, "poll period with -wait")
	)
	fs.Parse(args)
	if *exp == "" {
		return errors.New("submit: -experiment is required")
	}

	req := service.Request{Experiment: *exp, Budget: *budget, Config: *cfgName,
		TimeoutMS: timeout.Milliseconds()}
	if *workloads != "" {
		for _, n := range strings.Split(*workloads, ",") {
			req.Workloads = append(req.Workloads, strings.TrimSpace(n))
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var job service.JobStatus
	if err := decode(resp, &job); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "acbd: job %s %s (key %s)\n", job.ID, job.State, job.ResultKey)
	if !*wait {
		return json.NewEncoder(os.Stdout).Encode(job)
	}

	for job.State == service.JobQueued || job.State == service.JobRunning {
		time.Sleep(*interval)
		resp, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			return err
		}
		if err := decode(resp, &job); err != nil {
			return err
		}
	}
	if job.State != service.JobDone {
		return fmt.Errorf("submit: job %s %s: %s", job.ID, job.State, job.Error)
	}

	resp, err = http.Get(base + "/v1/results/" + job.ResultKey)
	if err != nil {
		return err
	}
	var tab stats.Table
	if err := decode(resp, &tab); err != nil {
		return err
	}
	switch *format {
	case "json":
		b, err := json.Marshal(&tab)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	case "csv":
		fmt.Print(tab.CSV())
	case "ascii":
		fmt.Print(tab.String())
	default:
		return fmt.Errorf("submit: unknown format %q", *format)
	}
	return nil
}

// decode reads an API response, turning non-2xx statuses into errors.
func decode(resp *http.Response, v interface{}) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, ae.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return json.Unmarshal(b, v)
}
