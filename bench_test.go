// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (run with `go test -bench=. -benchmem`). Each
// benchmark executes its experiment once per b.N iteration; pass
// -acb.tables to also print the resulting data series (EXPERIMENTS.md
// records the paper-vs-measured comparison for each). Every benchmark
// reports allocations and simulated cycles per wall second — the
// throughput metric docs/PERFORMANCE.md tracks and cmd/acbbench gates in
// CI. BenchmarkAblation* additionally quantify the design choices
// DESIGN.md calls out (Dynamo, the ROB-criticality heuristic, the eager
// select-µop variant, and the body-size confidence mapping).
package main

import (
	"flag"
	"fmt"
	"testing"

	"acb/internal/bpu"
	"acb/internal/config"
	"acb/internal/core"
	"acb/internal/experiments"
	"acb/internal/ooo"
	"acb/internal/stats"
	"acb/internal/workload"
)

// acbTables gates the experiment-table dumps: benchmarks are silent by
// default so `go test -bench` output stays parseable by benchstat and the
// CI perf gate.
var acbTables = flag.Bool("acb.tables", false, "print experiment result tables from benchmarks")

// benchBudget is the per-simulation retired-instruction budget for the
// figure benchmarks. The experiments are deterministic; larger budgets
// sharpen the numbers but scale run time linearly.
const benchBudget = 400_000

func benchOpts(rs *experiments.RunnerStats) experiments.Options {
	o := experiments.DefaultOptions()
	o.Budget = benchBudget
	o.Stats = rs
	return o
}

// benchExperiment runs one table-producing experiment per iteration,
// reporting allocations and simulated cycles per wall second.
func benchExperiment(b *testing.B, run func(experiments.Options) *stats.Table) {
	b.Helper()
	var rs experiments.RunnerStats
	o := benchOpts(&rs)
	b.ReportAllocs()
	b.ResetTimer()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = run(o)
	}
	b.StopTimer()
	b.ReportMetric(float64(rs.Cycles())/b.Elapsed().Seconds(), "cycles/sec")
	report(b, t)
}

func report(b *testing.B, t *stats.Table) {
	b.Helper()
	b.StopTimer()
	if *acbTables && t != nil {
		fmt.Printf("\n%s\n", t.String())
	}
}

// BenchmarkTableI — the paper's Table I: ACB storage (386 bytes). No
// simulation runs, so no cycles/sec metric.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = experiments.TableI()
	}
	report(b, t)
}

// BenchmarkMispredictCensus — Sec. II motivation: branch-PC coverage of
// dynamic mispredictions and the convergent/loop/non-convergent split.
func BenchmarkMispredictCensus(b *testing.B) {
	benchExperiment(b, experiments.MispredictCensus)
}

// BenchmarkFigure1 — perfect-BP headroom vs core scaling.
func BenchmarkFigure1(b *testing.B) {
	benchExperiment(b, experiments.Figure1)
}

// BenchmarkFigure6 — ACB speedup and flush reduction, category-wise.
func BenchmarkFigure6(b *testing.B) {
	benchExperiment(b, experiments.Figure6)
}

// BenchmarkFigure7 — per-workload mis-speculation vs performance ratios.
func BenchmarkFigure7(b *testing.B) {
	benchExperiment(b, experiments.Figure7)
}

// BenchmarkFigure8 — ACB vs ACB-without-Dynamo vs DMP.
func BenchmarkFigure8(b *testing.B) {
	benchExperiment(b, experiments.Figure8)
}

// BenchmarkFigure9 — DMP vs DMP-PBH vs ACB on the D/E outlier classes.
func BenchmarkFigure9(b *testing.B) {
	benchExperiment(b, experiments.Figure9)
}

// BenchmarkFigure10 — allocation stalls on category-E workloads.
func BenchmarkFigure10(b *testing.B) {
	benchExperiment(b, experiments.Figure10)
}

// BenchmarkFigure11 — ACB vs DHP coverage comparison.
func BenchmarkFigure11(b *testing.B) {
	benchExperiment(b, experiments.Figure11)
}

// BenchmarkCoreScaling — Sec. V-D: ACB on the future 8-wide core.
func BenchmarkCoreScaling(b *testing.B) {
	benchExperiment(b, experiments.CoreScaling)
}

// BenchmarkPowerProxy — Sec. V-E: allocation and flush reductions.
func BenchmarkPowerProxy(b *testing.B) {
	benchExperiment(b, experiments.PowerProxy)
}

// ---- Ablations ------------------------------------------------------------

// ablationWorkloads is a small representative slice: one big winner, one
// history-pollution outlier, one predication-hostile workload, one
// memory-shadowed workload.
func ablationWorkloads() []string {
	return []string{"lammps", "omnetpp", "eembc", "soplex", "gobmk"}
}

// runACBVariant routes the ablation sweep through the experiments
// package's shared worker pool (baseline and variant per workload fan out
// up to GOMAXPROCS wide; the geomean is scheduling-independent).
func runACBVariant(b *testing.B, rs *experiments.RunnerStats, cfg core.Config, names []string) float64 {
	b.Helper()
	return experiments.ACBGeomean(benchOpts(rs), cfg, names)
}

// reportAblation finishes an ablation benchmark: cycles/sec metric plus
// the gated result line.
func reportAblation(b *testing.B, rs *experiments.RunnerStats, format string, args ...interface{}) {
	b.Helper()
	b.StopTimer()
	b.ReportMetric(float64(rs.Cycles())/b.Elapsed().Seconds(), "cycles/sec")
	if *acbTables {
		fmt.Printf(format, args...)
	}
}

// BenchmarkAblationDynamo — ACB with vs without the run-time monitor.
func BenchmarkAblationDynamo(b *testing.B) {
	var rs experiments.RunnerStats
	b.ReportAllocs()
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = runACBVariant(b, &rs, core.DefaultConfig(), ablationWorkloads())
		cfg := core.DefaultConfig()
		cfg.UseDynamo = false
		without = runACBVariant(b, &rs, cfg, ablationWorkloads())
	}
	reportAblation(b, &rs, "\nACB geomean with Dynamo: %.3f   without: %.3f\n", with, without)
}

// BenchmarkAblationROBFrac — the Sec. III-A ROB-quartile criticality
// refinement on vs off.
func BenchmarkAblationROBFrac(b *testing.B) {
	var rs experiments.RunnerStats
	b.ReportAllocs()
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = runACBVariant(b, &rs, core.DefaultConfig(), ablationWorkloads())
		cfg := core.DefaultConfig()
		cfg.ROBFracLimit = 0.25
		on = runACBVariant(b, &rs, cfg, ablationWorkloads())
	}
	reportAblation(b, &rs, "\nACB geomean without ROB-quartile filter: %.3f   with: %.3f\n", off, on)
}

// BenchmarkAblationEagerACB — the Sec. V-C sensitivity study: ACB with
// DMP-style select micro-ops instead of stall-and-transparency (the paper
// measured only ~0.2% benefit, justifying the simpler design).
func BenchmarkAblationEagerACB(b *testing.B) {
	var rs experiments.RunnerStats
	b.ReportAllocs()
	var stall, eager float64
	for i := 0; i < b.N; i++ {
		stall = runACBVariant(b, &rs, core.DefaultConfig(), ablationWorkloads())
		cfg := core.DefaultConfig()
		cfg.Eager = true
		eager = runACBVariant(b, &rs, cfg, ablationWorkloads())
	}
	reportAblation(b, &rs, "\nACB geomean stall/transparency: %.3f   eager select-µops: %.3f\n", stall, eager)
}

// BenchmarkAblationLearningWindow — sensitivity of the convergence
// learning window N (paper: 40).
func BenchmarkAblationLearningWindow(b *testing.B) {
	var rs experiments.RunnerStats
	b.ReportAllocs()
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, n := range []int{16, 40, 64} {
			cfg := core.DefaultConfig()
			cfg.N = n
			results[n] = runACBVariant(b, &rs, cfg, ablationWorkloads())
		}
	}
	reportAblation(b, &rs, "\nACB geomean by learning window: N=16 %.3f  N=40 %.3f  N=64 %.3f\n",
		results[16], results[40], results[64])
}

// BenchmarkSensitivityN — the paper's N-window sweep (Sec. III-B).
func BenchmarkSensitivityN(b *testing.B) {
	benchExperiment(b, experiments.SensitivityN)
}

// BenchmarkSensitivityEpoch — the Dynamo epoch-length sweep (Sec. III-C).
func BenchmarkSensitivityEpoch(b *testing.B) {
	benchExperiment(b, experiments.SensitivityEpoch)
}

// BenchmarkSensitivityACBTable — ACB Table size sweep (Sec. III-B:
// "increasing its size from 32 to 256 had negligible effect").
func BenchmarkSensitivityACBTable(b *testing.B) {
	benchExperiment(b, experiments.SensitivityACBTable)
}

// BenchmarkSensitivityPredictor — ACB's gain across baseline predictors.
func BenchmarkSensitivityPredictor(b *testing.B) {
	benchExperiment(b, experiments.SensitivityPredictor)
}

// BenchmarkMultiRecon — the paper's category-B1 future-work extension:
// multiple reconvergence points learned from divergence feedback
// (Sec. V-C, "ACB can be enhanced to support the same by actively
// learning and allocating multiple reconvergence points").
func BenchmarkMultiRecon(b *testing.B) {
	benchExperiment(b, experiments.MultiRecon)
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (cycles and instructions simulated per wall second) on one compute-bound
// workload — the harness's own cost model.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workload.ByName("gobmk")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var retired, cycles int64
	for i := 0; i < b.N; i++ {
		p, m := w.Build()
		c := ooo.NewWithMemory(config.Skylake(), p, bpu.NewTAGE(bpu.DefaultTAGEConfig()), nil, m)
		res, err := c.Run(200_000)
		if err != nil {
			b.Fatal(err)
		}
		retired += res.Retired
		cycles += res.Cycles
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "instr/s")
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkAblationThrottle — Dynamo vs the paper's rejected pre-Dynamo
// stall-counting throttle (Sec. V-B): the stall metric over-throttles
// cases where saved flushes outweigh the added stalls.
func BenchmarkAblationThrottle(b *testing.B) {
	var rs experiments.RunnerStats
	b.ReportAllocs()
	var dynamo, stalls float64
	for i := 0; i < b.N; i++ {
		dynamo = runACBVariant(b, &rs, core.DefaultConfig(), ablationWorkloads())
		cfg := core.DefaultConfig()
		cfg.UseDynamo = false
		cfg.ThrottleStalls = true
		stalls = runACBVariant(b, &rs, cfg, ablationWorkloads())
	}
	reportAblation(b, &rs, "\nACB geomean with Dynamo: %.3f   with stall-count throttle: %.3f\n", dynamo, stalls)
}
